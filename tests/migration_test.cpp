// Tests for live session migration & handover resilience: explicit
// mid-stream migration with hot-state transfer (the migrated session's
// decide/drain sequence is bit-identical to an un-migrated oracle twin on an
// equivalent link), the exact migration books
// (requested == completed + aborted; aborts fall back to the displaced/
// failover path, nothing stranded), the graded kLinkDegrade fault verb
// composing with capacity scales, the HandoverPolicy (enter/exit
// hysteresis, per-session ping-pong budget, rebalance-on-departure), and
// policy-idle bit-identity (an enabled-but-quiet policy changes nothing).
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/cluster.hpp"
#include "serving/driver/event_loop.hpp"
#include "serving/driver/fault.hpp"
#include "serving/driver/replay.hpp"
#include "serving/driver/scenario.hpp"
#include "serving/session_manager.hpp"
#include "serving/telemetry/flight_recorder.hpp"

namespace arvis {
namespace {

const FrameStatsCache& migration_cache() {
  static const FrameStatsCache cache(*open_test_subject(17), 8, 8);
  return cache;
}

double cheapest_load(const std::vector<int>& candidates) {
  return AdmissionController::cheapest_depth_load(migration_cache(),
                                                  candidates);
}

ServingConfig base_serving() {
  ServingConfig config;
  config.steps = 200;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(migration_cache(), config.candidates,
                                   4.0 * migration_cache().workload(0).bytes(5));
  config.admission.utilization_target = 1.0;
  return config;
}

SessionSpec session_spec(std::size_t arrival, std::size_t departure,
                         std::uint64_t seed = 7) {
  SessionSpec spec;
  spec.cache = &migration_cache();
  spec.arrival_slot = arrival;
  spec.departure_slot = departure;
  spec.seed = seed;
  return spec;
}

// ------------------------------------------------ explicit migration ----

TEST(MigrationTest, MigratedSessionMatchesOracleTwinBitForBit) {
  // One session, two equivalent links. Cluster A migrates it from link 0 to
  // link 1 at slot 20; the twin cluster leaves it alone. Hot-state transfer
  // (backlog, EWMA, frame-row cursor) must make the migrated session's
  // per-slot records from the migration onward bit-identical to the twin's.
  ClusterConfig config;
  config.serving = base_serving();
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load, 4.0 * load};
  const std::vector<double> caps{4.0 * load, 4.0 * load};

  EdgeCluster migrated(config, means);
  const std::size_t id = migrated.submit(session_spec(0, 60));
  for (std::size_t t = 0; t < 20; ++t) migrated.step(caps);
  ASSERT_TRUE(migrated.migrate_session(id, 1));
  for (std::size_t t = 20; t < 60; ++t) migrated.step(caps);
  const ClusterResult moved = migrated.finish();

  EdgeCluster oracle(config, means);
  const std::size_t twin = oracle.submit(session_spec(0, 60));
  for (std::size_t t = 0; t < 60; ++t) oracle.step(caps);
  const ClusterResult stayed = oracle.finish();

  EXPECT_EQ(moved.metrics.migrations_requested, 1U);
  EXPECT_EQ(moved.metrics.migrations_completed, 1U);
  EXPECT_EQ(moved.metrics.migrations_aborted, 0U);
  EXPECT_EQ(moved.sessions[id].migrations, 1U);
  EXPECT_EQ(moved.sessions[id].link, 1);
  EXPECT_EQ(moved.sessions[id].failovers, 0U);

  // The reported outcome is the target-link segment: starts at the
  // migration slot, runs to the departure.
  const Trace& seg = moved.sessions[id].session.trace;
  const Trace& full = stayed.sessions[twin].session.trace;
  ASSERT_EQ(full.size(), 60U);
  ASSERT_EQ(seg.size(), 40U);
  ASSERT_EQ(seg.at(0).t, 20U);
  // The first migrated record opens with the carried backlog: exactly the
  // twin's backlog at the same slot.
  EXPECT_EQ(seg.at(0).backlog_begin, full.at(20).backlog_begin);
  for (std::size_t i = 0; i < seg.size(); ++i) {
    const StepRecord& a = seg.at(i);
    const StepRecord& b = full.at(20 + i);
    EXPECT_EQ(a.t, b.t) << i;
    EXPECT_EQ(a.depth, b.depth) << i;
    EXPECT_EQ(a.arrivals, b.arrivals) << i;
    EXPECT_EQ(a.service, b.service) << i;
    EXPECT_EQ(a.backlog_begin, b.backlog_begin) << i;
    EXPECT_EQ(a.backlog_end, b.backlog_end) << i;
    EXPECT_EQ(a.quality, b.quality) << i;
  }
}

TEST(MigrationTest, ExplicitMigrationRecordsFlightEventAndRejectsBadInput) {
  FlightRecorder recorder({256});
  ClusterConfig config;
  config.serving = base_serving();
  config.serving.telemetry.flight = &recorder;
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load, 4.0 * load};

  EdgeCluster cluster(config, means);
  const std::size_t id = cluster.submit(session_spec(0, 80));
  for (std::size_t t = 0; t < 10; ++t) cluster.step(means);

  // Invalid inputs refuse without touching the books.
  EXPECT_FALSE(cluster.migrate_session(id, 0));   // already there
  EXPECT_FALSE(cluster.migrate_session(id, 7));   // no such link
  EXPECT_FALSE(cluster.migrate_session(99, 1));   // no such session
  ASSERT_TRUE(cluster.set_link_state(1, true));
  EXPECT_FALSE(cluster.migrate_session(id, 1));   // target down
  ASSERT_TRUE(cluster.set_link_state(1, false));
  EXPECT_EQ(cluster.migrations_requested(), 0U);

  ASSERT_TRUE(cluster.migrate_session(id, 1));
  EXPECT_EQ(cluster.migrations_requested(), 1U);
  EXPECT_EQ(cluster.migrations_completed(), 1U);

  // The flight ring carries the migration: a = session id, b encodes
  // reason 2 (explicit), from link 0, to link 1.
  bool saw = false;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const FlightEvent& e = recorder.at(i);
    if (e.kind != FlightEventKind::kMigration) continue;
    saw = true;
    EXPECT_EQ(e.a, static_cast<double>(id));
    EXPECT_EQ(e.b, 2.0 * 1048576.0 + 0.0 * 1024.0 + 1.0);
  }
  EXPECT_TRUE(saw);

  for (std::size_t t = 0; t < 10; ++t) cluster.step(means);
  const ClusterResult result = cluster.finish();
  EXPECT_EQ(result.sessions[id].link, 1);
  EXPECT_EQ(result.sessions[id].migrations, 1U);
}

TEST(MigrationTest, AbortedMigrationFallsBackToDisplacedPath) {
  // Link 1 is too small to admit the session: the migration aborts, the
  // session lands on the displaced path, and the next slot re-places it on
  // link 0 under the usual exact failover books. Nothing is stranded.
  ClusterConfig config;
  config.serving = base_serving();
  config.placement = PlacementPolicy::kLeastLoaded;
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load, 0.1 * load};
  const std::vector<double> caps{4.0 * load, 0.1 * load};

  EdgeCluster cluster(config, means);
  const std::size_t id = cluster.submit(session_spec(0, 80));
  for (std::size_t t = 0; t < 10; ++t) cluster.step(caps);
  ASSERT_EQ(cluster.link(0).active_count(), 1U);

  EXPECT_FALSE(cluster.migrate_session(id, 1));
  EXPECT_EQ(cluster.migrations_requested(), 1U);
  EXPECT_EQ(cluster.migrations_completed(), 0U);
  EXPECT_EQ(cluster.migrations_aborted(), 1U);

  for (std::size_t t = 0; t < 10; ++t) cluster.step(caps);
  const ClusterResult result = cluster.finish();
  const ClusterMetrics& m = result.metrics;
  EXPECT_EQ(m.migrations_requested, m.migrations_completed +
                                        m.migrations_aborted);
  EXPECT_EQ(m.failover_displaced, 1U);
  EXPECT_EQ(m.failover_displaced,
            m.failover_replaced + m.fault_evicted + m.fault_closed);
  EXPECT_EQ(result.sessions[id].migrations, 0U);
  EXPECT_EQ(result.sessions[id].failovers, 1U);
  EXPECT_EQ(result.sessions[id].link, 0);
  EXPECT_FALSE(result.sessions[id].fault_evicted);
}

// -------------------------------------------------- kLinkDegrade verb ----

TEST(DegradeTest, DegradeShrinksAdmissionAndComposesWithCapacityScale) {
  ClusterConfig config;
  config.serving = base_serving();
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load};

  // A deep degrade refuses the same session nominal capacity admits.
  for (const double scale : {1.0, 0.05}) {
    EdgeCluster cluster(config, means);
    ASSERT_TRUE(cluster.set_link_degrade(0, scale, 2.0));
    const std::size_t id = cluster.submit(session_spec(0, 20));
    cluster.step({means[0] * scale});
    const ClusterResult result = cluster.finish();
    EXPECT_EQ(result.sessions[id].session.admitted, scale == 1.0) << scale;
    EXPECT_EQ(result.metrics.link_degrade_events, 1U);
  }

  // Degrade composes multiplicatively with the operator capacity scale on
  // the offered-capacity plane: 0.5 x 0.5 = 0.25 of the feed, exactly.
  EdgeCluster cluster(config, means);
  const double cap = 1.0e5;
  ASSERT_TRUE(cluster.set_link_capacity_scale(0, 0.5));
  ASSERT_TRUE(cluster.set_link_degrade(0, 0.5, 1.0));
  EXPECT_EQ(cluster.link_degrade_scale(0), 0.5);
  EXPECT_EQ(cluster.link_delay(0), 1.0);
  for (std::size_t t = 0; t < 10; ++t) cluster.step({cap});
  const ClusterResult result = cluster.finish();
  EXPECT_EQ(result.metrics.fleet.capacity_offered, cap * 0.25 * 10.0);

  // Bad inputs refuse.
  EdgeCluster fresh(config, means);
  EXPECT_FALSE(fresh.set_link_degrade(0, -0.5, 0.0));
  EXPECT_FALSE(fresh.set_link_degrade(0, 0.5, -1.0));
  EXPECT_FALSE(fresh.set_link_degrade(1, 0.5, 0.0));  // out of range
}

TEST(DegradeTest, DriverAppliesLinkDegradeEventsAndCounts) {
  ClusterConfig config;
  config.serving = base_serving();
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load, 4.0 * load};
  EdgeCluster cluster(config, means);
  ConstantChannel a(means[0]), b(means[1]);
  ClusterBackend backend(cluster, {&a, &b});

  DriverConfig driver;
  EventLoop loop(driver, backend);
  loop.schedule_arrival(0, session_spec(0, 60));
  FaultPlan plan;
  plan.degrade_pulse(1, 10, 8, 0.3, 2.0, 10, /*steps=*/2);
  loop.schedule_fault_plan(plan);
  const DriverReport report = loop.run();

  EXPECT_EQ(report.faults_applied, 3U);  // 2 ramp stages + recovery
  EXPECT_EQ(report.link_degrade_events, 3U);
  EXPECT_EQ(report.faults_ignored, 0U);
  EXPECT_EQ(cluster.link_degrade_scale(1), 1.0);  // recovered by the end
  const ClusterResult result = cluster.finish();
  EXPECT_EQ(result.metrics.link_degrade_events, 3U);
}

// ------------------------------------------------------ HandoverPolicy ----

TEST(HandoverPolicyTest, HysteresisEntersAndExitsWithABand) {
  ClusterConfig config;
  config.serving = base_serving();
  config.handover.enabled = true;
  config.handover.enter_score = 0.5;
  config.handover.exit_score = 0.2;
  config.handover.delay_weight = 0.1;
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load, 4.0 * load};
  const std::vector<double> caps{4.0 * load, 4.0 * load};

  EdgeCluster cluster(config, means);
  // Mid-band score (0.3 + 0.05 = 0.35 < enter): never enters.
  ASSERT_TRUE(cluster.set_link_degrade(0, 0.7, 0.5));
  cluster.step(caps);
  EXPECT_FALSE(cluster.handover_active(0));
  // Deep degrade (0.7 + 0.1 = 0.8 >= enter): enters.
  ASSERT_TRUE(cluster.set_link_degrade(0, 0.3, 1.0));
  cluster.step(caps);
  EXPECT_TRUE(cluster.handover_active(0));
  // Back to mid-band: above exit, stays in — the hysteresis band.
  ASSERT_TRUE(cluster.set_link_degrade(0, 0.7, 0.5));
  cluster.step(caps);
  EXPECT_TRUE(cluster.handover_active(0));
  // Full recovery: exits.
  ASSERT_TRUE(cluster.set_link_degrade(0, 1.0, 0.0));
  cluster.step(caps);
  EXPECT_FALSE(cluster.handover_active(0));
  cluster.finish();

  // enter <= exit is rejected at construction.
  ClusterConfig bad = config;
  bad.handover.enter_score = 0.2;
  bad.handover.exit_score = 0.5;
  EXPECT_THROW(EdgeCluster(bad, means), std::invalid_argument);
}

TEST(HandoverPolicyTest, DegradedLinkHandsSessionsOverAndBooksBalance) {
  // Two links, three long sessions spread across them, then link 0 degrades
  // hard: the policy migrates its sessions onto link 1 mid-stream and the
  // books reconcile exactly.
  ClusterConfig config;
  config.serving = base_serving();
  config.placement = PlacementPolicy::kLeastLoaded;
  config.handover.enabled = true;
  config.handover.delay_weight = 0.1;
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{8.0 * load, 8.0 * load};

  EdgeCluster cluster(config, means);
  ConstantChannel a(means[0]), b(means[1]);
  ClusterBackend backend(cluster, {&a, &b});
  DriverConfig driver;
  EventLoop loop(driver, backend);
  for (std::size_t i = 0; i < 3; ++i) {
    loop.schedule_arrival(0, session_spec(0, 120, i));
  }
  loop.schedule_link_degrade(40, 0, 0.2, 3.0);   // score 1.1: enter
  loop.schedule_link_degrade(80, 0, 1.0, 0.0);   // recover: exit
  const DriverReport report = loop.run();

  EXPECT_GT(report.migrations_completed, 0U);
  EXPECT_EQ(report.migrations_requested,
            report.migrations_completed + report.migrations_aborted);

  const ClusterResult result = cluster.finish();
  const ClusterMetrics& m = result.metrics;
  EXPECT_EQ(m.migrations_requested,
            m.migrations_completed + m.migrations_aborted);
  EXPECT_EQ(m.failover_displaced,
            m.failover_replaced + m.fault_evicted + m.fault_closed);
  std::size_t migration_sum = 0;
  for (const ClusterSessionOutcome& s : result.sessions) {
    migration_sum += s.migrations;
    // Every session survived the degradation: no evictions, all on link 1
    // (or still link 1 after the drain).
    EXPECT_FALSE(s.fault_evicted);
    EXPECT_TRUE(s.session.admitted);
  }
  EXPECT_EQ(migration_sum, m.migrations_completed);
}

TEST(HandoverPolicyTest, SessionBudgetSuppressesPingPong) {
  // Alternating degradation between the two links tempts the policy to
  // bounce sessions back and forth every pulse; the per-session window
  // budget caps each session's migrations.
  ClusterConfig config;
  config.serving = base_serving();
  config.placement = PlacementPolicy::kLeastLoaded;
  config.handover.enabled = true;
  config.handover.delay_weight = 0.1;
  config.handover.session_budget = 1;
  config.handover.window_slots = 1'000'000;  // one budget for the whole run
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{8.0 * load, 8.0 * load};

  auto run_with_budget = [&](std::size_t budget) {
    ClusterConfig c = config;
    c.handover.session_budget = budget;
    EdgeCluster cluster(c, means);
    ConstantChannel a(means[0]), b(means[1]);
    ClusterBackend backend(cluster, {&a, &b});
    DriverConfig driver;
    EventLoop loop(driver, backend);
    for (std::size_t i = 0; i < 4; ++i) {
      loop.schedule_arrival(0, session_spec(0, 400, i));
    }
    // Flap the degradation between the links every 40 slots.
    for (std::size_t round = 0; round < 4; ++round) {
      const std::size_t link = round % 2;
      const std::size_t at = 40 + round * 80;
      loop.schedule_link_degrade(at, link, 0.2, 3.0);
      loop.schedule_link_degrade(at + 40, link, 1.0, 0.0);
    }
    loop.run();
    return cluster.finish();
  };

  const ClusterResult tight = run_with_budget(1);
  EXPECT_GT(tight.metrics.migrations_completed, 0U);
  for (const ClusterSessionOutcome& s : tight.sessions) {
    EXPECT_LE(s.migrations, 1U);
  }

  // A looser budget admits more total migrations than the tight one.
  const ClusterResult loose = run_with_budget(8);
  EXPECT_GE(loose.metrics.migrations_completed,
            tight.metrics.migrations_completed);
  std::uint32_t worst = 0;
  for (const ClusterSessionOutcome& s : loose.sessions) {
    worst = std::max(worst, s.migrations);
  }
  EXPECT_GT(worst, 1U) << "the flap must actually ping-pong when allowed";
}

TEST(HandoverPolicyTest, RebalanceOnDepartureFillsFreedLink) {
  // Three sessions, least-loaded placement: two land on link 0, one on
  // link 1. When link 1's session departs, rebalance-on-departure pulls the
  // worst-served session off link 0 onto the freed link.
  ClusterConfig config;
  config.serving = base_serving();
  config.placement = PlacementPolicy::kLeastLoaded;
  config.handover.enabled = true;
  config.handover.rebalance_on_departure = true;
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load, 4.0 * load};
  const std::vector<double> caps{4.0 * load, 4.0 * load};

  EdgeCluster cluster(config, means);
  const std::size_t s0 = cluster.submit(session_spec(0, 100, 1));
  const std::size_t s1 = cluster.submit(session_spec(0, 30, 2));
  const std::size_t s2 = cluster.submit(session_spec(0, 100, 3));
  for (std::size_t t = 0; t < 60; ++t) cluster.step(caps);
  const ClusterResult result = cluster.finish();

  EXPECT_EQ(result.metrics.migrations_completed, 1U);
  EXPECT_EQ(result.metrics.migrations_requested, 1U);
  // The departing session never migrated; exactly one of the survivors
  // moved onto its link.
  EXPECT_EQ(result.sessions[s1].migrations, 0U);
  EXPECT_EQ(result.sessions[s0].migrations + result.sessions[s2].migrations,
            1U);
  const int moved_link = result.sessions[s0].migrations == 1
                             ? result.sessions[s0].link
                             : result.sessions[s2].link;
  EXPECT_EQ(moved_link, result.sessions[s1].link);
}

TEST(HandoverPolicyTest, QuietPolicyIsBitIdenticalToDisabled) {
  // An enabled policy with no degradation anywhere must not perturb the run:
  // same churn, same placement, same metrics, bit for bit.
  ScenarioConfig scenario;
  scenario.horizon = 400;
  scenario.mean_duration = 80.0;
  scenario.max_duration = 200;
  scenario.base_rate = 0.5 * 4.0 / scenario.mean_duration;
  scenario.profile_count = 1;
  scenario.seed = 99;

  auto run = [&](bool enabled) {
    ReplayConfig config;
    config.cluster.serving = base_serving();
    config.cluster.placement = PlacementPolicy::kLeastLoaded;
    config.cluster.handover.enabled = enabled;
    config.driver.snapshot_period = 25;
    const double load = cheapest_load(config.cluster.serving.candidates);
    ConstantChannel a(2.4 * load), b(2.4 * load);
    std::vector<ChannelModel*> channels{&a, &b};
    const std::vector<const FrameStatsCache*> profiles{&migration_cache()};
    return replay_scenario(config,
                           *make_scenario(ScenarioKind::kFlashCrowd, scenario),
                           profiles, channels);
  };

  const ReplayResult off = run(false);
  const ReplayResult on = run(true);
  EXPECT_EQ(on.cluster.metrics.migrations_requested, 0U);
  EXPECT_EQ(on.cluster.metrics.fleet.capacity_used,
            off.cluster.metrics.fleet.capacity_used);
  EXPECT_EQ(on.cluster.metrics.fleet.mean_quality,
            off.cluster.metrics.fleet.mean_quality);
  ASSERT_EQ(on.cluster.sessions.size(), off.cluster.sessions.size());
  for (std::size_t i = 0; i < on.cluster.sessions.size(); ++i) {
    EXPECT_EQ(on.cluster.sessions[i].link, off.cluster.sessions[i].link) << i;
    EXPECT_EQ(on.cluster.sessions[i].session.departure_slot,
              off.cluster.sessions[i].session.departure_slot)
        << i;
  }
  ASSERT_EQ(on.report.snapshots.size(), off.report.snapshots.size());
  for (std::size_t i = 0; i < on.report.snapshots.size(); ++i) {
    EXPECT_EQ(on.report.snapshots[i].capacity_used_total,
              off.report.snapshots[i].capacity_used_total)
        << i;
  }
}

// ------------------------------------- churn x flapping degradation ----

TEST(MigrationChurnTest, BooksReconcileUnderChurnAndFlappingDegradation) {
  // Flash-crowd churn with a mobility walk flapping graded degradation
  // across both links and the handover policy live: the full stack —
  // placement, retries, migrations, displaced fallbacks — must keep every
  // book exact, twice over (the run is deterministic).
  ReplayConfig config;
  config.cluster.serving = base_serving();
  config.cluster.placement = PlacementPolicy::kLeastLoaded;
  config.cluster.handover.enabled = true;
  config.cluster.handover.delay_weight = 0.1;
  config.driver.snapshot_period = 25;
  config.driver.retry.enabled = true;

  ScenarioConfig scenario;
  scenario.horizon = 800;
  scenario.mean_duration = 150.0;
  scenario.max_duration = 400;
  scenario.base_rate = 0.5 * 4.0 / scenario.mean_duration;
  scenario.profile_count = 1;
  scenario.seed = 42;
  scenario.spike_duration = 80;
  scenario.spike_multiplier = 8.0;

  config.faults.handover_walk(/*seed=*/0xF00D, /*link_count=*/2,
                              /*walkers=*/2, /*at=*/100, /*horizon=*/600,
                              /*dwell_slots=*/60, /*floor_scale=*/0.2,
                              /*delay=*/3.0);

  auto run = [&] {
    const double load = cheapest_load(config.cluster.serving.candidates);
    ConstantChannel a(2.4 * load), b(2.4 * load);
    std::vector<ChannelModel*> channels{&a, &b};
    const std::vector<const FrameStatsCache*> profiles{&migration_cache()};
    return replay_scenario(config,
                           *make_scenario(ScenarioKind::kFlashCrowd, scenario),
                           profiles, channels);
  };

  const ReplayResult result = run();
  const ClusterMetrics& m = result.cluster.metrics;
  EXPECT_GT(m.link_degrade_events, 0U);
  EXPECT_GT(m.migrations_completed, 0U);
  EXPECT_EQ(m.migrations_requested,
            m.migrations_completed + m.migrations_aborted);
  EXPECT_EQ(m.failover_displaced,
            m.failover_replaced + m.fault_evicted + m.fault_closed);
  std::size_t migration_sum = 0;
  for (const ClusterSessionOutcome& s : result.cluster.sessions) {
    migration_sum += s.migrations;
  }
  EXPECT_EQ(migration_sum, m.migrations_completed);
  // The report mirrors the cluster's books.
  EXPECT_EQ(result.report.migrations_requested, m.migrations_requested);
  EXPECT_EQ(result.report.migrations_completed, m.migrations_completed);
  EXPECT_EQ(result.report.migrations_aborted, m.migrations_aborted);
  EXPECT_EQ(result.report.link_degrade_events, m.link_degrade_events);

  // Same seed, same walk, same books — bit for bit.
  const ReplayResult again = run();
  EXPECT_EQ(again.cluster.metrics.migrations_requested,
            m.migrations_requested);
  EXPECT_EQ(again.cluster.metrics.migrations_completed,
            m.migrations_completed);
  EXPECT_EQ(again.cluster.metrics.fleet.capacity_used,
            m.fleet.capacity_used);
  ASSERT_EQ(again.cluster.sessions.size(), result.cluster.sessions.size());
  for (std::size_t i = 0; i < again.cluster.sessions.size(); ++i) {
    EXPECT_EQ(again.cluster.sessions[i].migrations,
              result.cluster.sessions[i].migrations)
        << i;
    EXPECT_EQ(again.cluster.sessions[i].link, result.cluster.sessions[i].link)
        << i;
  }
}

}  // namespace
}  // namespace arvis
