// Tests for the extension features: normal estimation and sampling, the
// color codec, the multi-constraint (energy-aware) controller, the
// energy-budget simulation, and the replication harness.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/latency.hpp"
#include "common/csv.hpp"
#include "datasets/catalog.hpp"
#include "delay/energy_model.hpp"
#include "delay/service_process.hpp"
#include "lyapunov/adaptive_v.hpp"
#include "lyapunov/multi_constraint.hpp"
#include "net/joint_control.hpp"
#include "octree/color_codec.hpp"
#include "pointcloud/normals.hpp"
#include "render/octree_renderer.hpp"
#include "sim/energy_simulation.hpp"
#include "sim/replication.hpp"

namespace arvis {
namespace {

// ---------------------------------------------------------- Normals ----

TEST(PcaNormalTest, PlaneNormalRecovered) {
  Rng rng(1);
  std::vector<Vec3f> plane;
  for (int i = 0; i < 100; ++i) {
    plane.push_back({rng.next_float() * 4 - 2, rng.next_float() * 4 - 2, 0.5F});
  }
  const Vec3f n = pca_normal(plane);
  EXPECT_NEAR(std::abs(n.z), 1.0F, 1e-4F);
  EXPECT_NEAR(n.x, 0.0F, 1e-3F);
}

TEST(PcaNormalTest, DegenerateInputsGiveZero) {
  EXPECT_EQ(pca_normal(std::vector<Vec3f>{}), (Vec3f{}));
  EXPECT_EQ(pca_normal(std::vector<Vec3f>{{1, 1, 1}, {2, 2, 2}}), (Vec3f{}));
  // Collinear points: no plane defined.
  std::vector<Vec3f> line;
  for (int i = 0; i < 20; ++i) line.push_back({static_cast<float>(i), 0, 0});
  EXPECT_EQ(pca_normal(line), (Vec3f{}));
}

TEST(EstimateNormalsTest, SphereNormalsAreRadial) {
  // On a sphere, the local surface normal is the radial direction.
  Rng rng(2);
  PointCloud sphere;
  for (int i = 0; i < 3000; ++i) {
    const float z = 2.0F * rng.next_float() - 1.0F;
    const float phi = 6.2831853F * rng.next_float();
    const float r = std::sqrt(std::max(0.0F, 1.0F - z * z));
    sphere.add_point({r * std::cos(phi), r * std::sin(phi), z});
  }
  const auto normals = estimate_normals(sphere, 12);
  ASSERT_EQ(normals.size(), sphere.size());
  RunningStats alignment;
  for (std::size_t i = 0; i < sphere.size(); ++i) {
    const Vec3f radial = normalized(sphere.position(i));
    alignment.add(std::abs(dot(normals[i], radial)));
  }
  EXPECT_GT(alignment.mean(), 0.97);
  EXPECT_THROW(estimate_normals(sphere, 2), std::invalid_argument);
}

TEST(OrientNormalsTest, AllFaceViewpoint) {
  PointCloud cloud;
  cloud.add_point({0, 0, 1});
  cloud.add_point({0, 0, -1});
  std::vector<Vec3f> normals{{0, 0, -1}, {0, 0, -1}};
  orient_normals_toward(normals, cloud, {0, 0, 10});
  EXPECT_GT(dot(normals[0], Vec3f{0, 0, 1}), 0.0F);  // flipped
  EXPECT_GT(dot(normals[1], Vec3f{0, 0, 1}), 0.0F);  // kept
  std::vector<Vec3f> wrong_size{{0, 0, 1}};
  EXPECT_THROW(orient_normals_toward(wrong_size, cloud, {0, 0, 1}),
               std::invalid_argument);
}

// --------------------------------------------------------- Sampling ----

TEST(RandomDownsampleTest, SizeAndUniqueness) {
  Rng rng(3);
  PointCloud cloud;
  for (int i = 0; i < 100; ++i) {
    cloud.add_point({static_cast<float>(i), 0, 0},
                    {static_cast<std::uint8_t>(i), 0, 0});
  }
  const PointCloud sample = random_downsample(cloud, 30, rng);
  ASSERT_EQ(sample.size(), 30U);
  EXPECT_TRUE(sample.has_colors());
  std::set<float> xs;
  for (const Vec3f& p : sample.positions()) xs.insert(p.x);
  EXPECT_EQ(xs.size(), 30U);  // no duplicates (without replacement)
  // Requesting more than available returns everything.
  Rng rng2(4);
  EXPECT_EQ(random_downsample(cloud, 500, rng2).size(), 100U);
}

TEST(StrideDownsampleTest, EveryKth) {
  PointCloud cloud;
  for (int i = 0; i < 10; ++i) cloud.add_point({static_cast<float>(i), 0, 0});
  const PointCloud every3 = stride_downsample(cloud, 3, 1);
  ASSERT_EQ(every3.size(), 3U);
  EXPECT_FLOAT_EQ(every3.position(0).x, 1.0F);
  EXPECT_FLOAT_EQ(every3.position(2).x, 7.0F);
  EXPECT_THROW(stride_downsample(cloud, 0), std::invalid_argument);
  EXPECT_THROW(stride_downsample(cloud, 3, 3), std::invalid_argument);
}

// ------------------------------------------------------- Color codec ----

std::vector<Color8> sample_colors(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Color8> colors;
  Color8 current{128, 128, 128};
  for (std::size_t i = 0; i < n; ++i) {
    // Correlated walk, like real Morton-ordered surface colors.
    auto step = [&](std::uint8_t v) {
      const int next = static_cast<int>(v) +
                       static_cast<int>(rng.uniform_int(-6, 6));
      return static_cast<std::uint8_t>(std::clamp(next, 0, 255));
    };
    current = {step(current.r), step(current.g), step(current.b)};
    colors.push_back(current);
  }
  return colors;
}

TEST(ColorCodecTest, LosslessAt8Bits) {
  const auto colors = sample_colors(2'000, 7);
  const ColorStream stream = encode_colors(colors, 8);
  const auto decoded = decode_colors(stream);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded->size(), colors.size());
  for (std::size_t i = 0; i < colors.size(); ++i) {
    EXPECT_EQ((*decoded)[i], colors[i]) << "index " << i;
  }
}

TEST(ColorCodecTest, QuantizedRoundTripIsIdempotent) {
  const auto colors = sample_colors(500, 8);
  for (int bits : {2, 4, 6}) {
    const auto once = decode_colors(encode_colors(colors, bits));
    ASSERT_TRUE(once.ok());
    const auto twice = decode_colors(encode_colors(*once, bits));
    ASSERT_TRUE(twice.ok());
    for (std::size_t i = 0; i < once->size(); ++i) {
      EXPECT_EQ((*once)[i], (*twice)[i]);
    }
  }
}

TEST(ColorCodecTest, CompressionBeatsRawOnCoherentColors) {
  const auto colors = sample_colors(10'000, 9);
  const ColorStream stream = encode_colors(colors, 8);
  // Raw is 3 bytes/color; correlated deltas should be well under that.
  EXPECT_LT(stream.byte_size(), colors.size() * 3);
  // Coarser quantization shrinks the stream further.
  EXPECT_LT(encode_colors(colors, 4).byte_size(), stream.byte_size());
}

TEST(ColorCodecTest, QuantizationPsnrMonotoneInBits) {
  const auto colors = sample_colors(2'000, 10);
  double previous = 0.0;
  for (int bits : {2, 4, 6, 8}) {
    const double psnr = color_quantization_psnr_db(colors, bits);
    EXPECT_GT(psnr, previous) << "bits " << bits;
    previous = psnr;
  }
  EXPECT_TRUE(std::isinf(color_quantization_psnr_db(colors, 8)));
}

TEST(ColorCodecTest, RejectsMalformedStreams) {
  const auto colors = sample_colors(100, 11);
  ColorStream truncated = encode_colors(colors, 6);
  truncated.bytes.resize(truncated.bytes.size() / 2);
  EXPECT_FALSE(decode_colors(truncated).ok());

  ColorStream trailing = encode_colors(colors, 6);
  trailing.bytes.push_back(0x00);
  EXPECT_FALSE(decode_colors(trailing).ok());

  ColorStream bad_bits = encode_colors(colors, 6);
  bad_bits.bits = 0;
  EXPECT_FALSE(decode_colors(bad_bits).ok());

  EXPECT_THROW(encode_colors(colors, 0), std::invalid_argument);
  EXPECT_THROW(encode_colors(colors, 9), std::invalid_argument);
}

TEST(ColorCodecTest, RealLodColorsCompress) {
  const auto source = open_test_subject(12);
  const Octree tree(source->frame(0), 8);
  const PointCloud lod = tree.extract_lod(7);
  ASSERT_TRUE(lod.has_colors());
  const ColorStream stream = encode_colors(lod.colors(), 8);
  const auto decoded = decode_colors(stream);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), lod.size());
  EXPECT_LT(stream.byte_size(), lod.size() * 3);  // beats raw 24 bpp
}

// ----------------------------------------- Multi-constraint argmax ----

TEST(MultiConstraintTest, ReducesToPlainDppWithoutConstraints) {
  const std::vector<double> p{1, 2, 3};
  const std::vector<double> a{10, 20, 30};
  const DppDecision plain = drift_plus_penalty_argmax(p, a, 5.0, 2.0);
  const DppDecision multi = multi_constraint_argmax(p, a, 5.0, 2.0, {});
  EXPECT_EQ(plain.index, multi.index);
  EXPECT_DOUBLE_EQ(plain.objective, multi.objective);
}

TEST(MultiConstraintTest, ActiveConstraintShiftsDecision) {
  const std::vector<double> p{1, 2, 3};
  const std::vector<double> a{1, 1, 1};       // delay-neutral
  const std::vector<double> energy{0, 10, 100};  // costly top action
  // No energy pressure: pick the max-utility action.
  {
    const ConstraintTerm term{0.0, energy};
    EXPECT_EQ(multi_constraint_argmax(p, a, 10.0, 0.0, {&term, 1}).index, 2U);
  }
  // Moderate virtual backlog: the top action is priced out (Z·Δe exceeds
  // V·Δp between actions 1 and 2 once Z > 10/90).
  {
    const ConstraintTerm term{0.5, energy};
    EXPECT_EQ(multi_constraint_argmax(p, a, 10.0, 0.0, {&term, 1}).index, 1U);
  }
  // Heavy backlog: even action 1's 10 J/slot is priced out (Z > 10/10).
  {
    const ConstraintTerm term{5.0, energy};
    EXPECT_EQ(multi_constraint_argmax(p, a, 10.0, 0.0, {&term, 1}).index, 0U);
  }
}

TEST(MultiConstraintTest, Validation) {
  const std::vector<double> p{1, 2};
  const std::vector<double> a{1, 2};
  const std::vector<double> wrong{1, 2, 3};
  const ConstraintTerm bad_size{1.0, wrong};
  EXPECT_THROW(multi_constraint_argmax(p, a, 1.0, 0.0, {&bad_size, 1}),
               std::invalid_argument);
  const ConstraintTerm bad_backlog{-1.0, a};
  EXPECT_THROW(multi_constraint_argmax(p, a, 1.0, 0.0, {&bad_backlog, 1}),
               std::invalid_argument);
  EXPECT_THROW(multi_constraint_argmax({}, {}, 1.0, 0.0, {}),
               std::invalid_argument);
}

// ------------------------------------------------- Energy simulation ----

TEST(EnergyModelTest, BuiltinsAndLookup) {
  const auto models = builtin_energy_models();
  ASSERT_EQ(models.size(), 4U);
  EXPECT_GT(energy_model("phone-low").j_per_point,
            energy_model("edge-gpu").j_per_point);
  EXPECT_THROW(energy_model("toaster"), std::invalid_argument);
  const EnergyModel m{"m", 0.01, 1e-6};
  EXPECT_DOUBLE_EQ(m.slot_energy_j(0.0), 0.01);
  EXPECT_DOUBLE_EQ(m.slot_energy_j(1e6), 1.01);
}

struct EnergyFixture : testing::Test {
  static const FrameStatsCache& cache() {
    static const FrameStatsCache instance(*open_test_subject(91), 8, 8);
    return instance;
  }

  static EnergySimConfig config(double budget) {
    EnergySimConfig c;
    c.base.steps = 4'000;
    c.base.candidates = {3, 4, 5, 6, 7, 8};
    c.energy = EnergyModel{"test", 0.001, 1e-6};
    c.energy_budget_j_per_slot = budget;
    return c;
  }
};

TEST_F(EnergyFixture, BudgetRespectedInTimeAverage) {
  // Budget that a fixed max depth would violate: e(max) ≈ 0.001 + 1e-6·a(8).
  const double max_energy =
      0.001 + 1e-6 * cache().mean_points_at_depth()[8];
  const double budget = 0.4 * max_energy;
  ConstantService service(1e9);  // delay never binds; isolate the energy term
  const EnergySimResult result =
      run_energy_simulation(config(budget), cache(), 1e5, service);
  // Time-average energy within budget (+ vanishing Z/t correction).
  EXPECT_LE(result.average_energy_j,
            budget + result.final_virtual_backlog /
                         static_cast<double>(result.trace.size()) + 1e-9);
  // And the controller is not trivially stuck at min depth.
  EXPECT_GT(result.trace.summarize().mean_depth, 3.2);
}

TEST_F(EnergyFixture, GenerousBudgetRecoversUnconstrainedBehaviour) {
  ConstantService service(1e9);
  const EnergySimResult result =
      run_energy_simulation(config(1e3), cache(), 1e5, service);
  // Energy never binds: max depth every slot.
  EXPECT_DOUBLE_EQ(result.trace.summarize().mean_depth, 8.0);
  EXPECT_DOUBLE_EQ(result.final_virtual_backlog, 0.0);
}

TEST_F(EnergyFixture, TighterBudgetLowersDepth) {
  ConstantService s1(1e9), s2(1e9);
  const double max_energy =
      0.001 + 1e-6 * cache().mean_points_at_depth()[8];
  const double loose = run_energy_simulation(config(0.8 * max_energy), cache(),
                                             1e5, s1)
                           .trace.summarize()
                           .mean_depth;
  const double tight = run_energy_simulation(config(0.2 * max_energy), cache(),
                                             1e5, s2)
                           .trace.summarize()
                           .mean_depth;
  EXPECT_GT(loose, tight);
}

TEST_F(EnergyFixture, Validation) {
  ConstantService service(100.0);
  EXPECT_THROW(
      run_energy_simulation(config(0.0), cache(), 1e5, service),
      std::invalid_argument);
  auto bad = config(1.0);
  bad.base.candidates = {8, 3};
  EXPECT_THROW(run_energy_simulation(bad, cache(), 1e5, service),
               std::invalid_argument);
  EXPECT_THROW(run_energy_simulation(config(1.0), cache(), -1.0, service),
               std::invalid_argument);
}

// ------------------------------------------------- Culled rendering ----

TEST(FrustumTest, ContainsAndCulls) {
  Camera camera;
  camera.eye = {0, 0, 5};
  camera.target = {0, 0, 0};
  camera.fov_y_radians = 0.9F;
  const Frustum frustum(camera, 1.0F);
  EXPECT_TRUE(frustum.contains({0, 0, 0}));
  EXPECT_FALSE(frustum.contains({0, 0, 10}));   // behind the eye
  EXPECT_FALSE(frustum.contains({100, 0, 0}));  // far off to the side

  Aabb visible;
  visible.expand(Vec3f{-0.5F, -0.5F, -0.5F});
  visible.expand(Vec3f{0.5F, 0.5F, 0.5F});
  EXPECT_TRUE(frustum.intersects(visible));

  Aabb behind;
  behind.expand(Vec3f{-1, -1, 7});
  behind.expand(Vec3f{1, 1, 9});
  EXPECT_FALSE(frustum.intersects(behind));

  Aabb straddling;  // partially visible: must NOT be culled
  straddling.expand(Vec3f{-100, -0.1F, -0.1F});
  straddling.expand(Vec3f{0.1F, 0.1F, 0.1F});
  EXPECT_TRUE(frustum.intersects(straddling));
  EXPECT_FALSE(frustum.intersects(Aabb{}));
}

TEST(CulledRenderTest, PixelIdenticalToFlatRender) {
  const auto source = open_test_subject(21);
  const Octree tree(source->frame(0), 8);
  Camera camera;
  camera.eye = {0.0F, 0.9F, 2.2F};
  camera.target = {0.0F, 0.9F, 0.0F};

  Framebuffer flat(96, 96), culled(96, 96);
  flat.clear();
  culled.clear();
  render_points(flat, camera, tree.extract_lod(6), 1);
  const CulledRenderStats stats =
      render_octree_culled(culled, camera, tree, 6, 1, 3);

  EXPECT_DOUBLE_EQ(image_mse(flat, culled), 0.0);
  EXPECT_GT(stats.nodes_tested, 0U);
  EXPECT_EQ(stats.points_rendered, stats.raster.points_in);
}

TEST(CulledRenderTest, ZoomedCameraCullsNodes) {
  const auto source = open_test_subject(22);
  const Octree tree(source->frame(0), 8);
  // Camera zoomed tight on the head: most of the body is off-frustum.
  Camera camera;
  camera.eye = {0.0F, 1.55F, 0.5F};
  camera.target = {0.0F, 1.55F, 0.0F};
  camera.fov_y_radians = 0.35F;

  Framebuffer fb(96, 96);
  fb.clear();
  const CulledRenderStats stats =
      render_octree_culled(fb, camera, tree, 8, 1, 4);
  EXPECT_GT(stats.nodes_culled, 0U);
  EXPECT_LT(stats.points_rendered, tree.occupied_count(8));
  // Still pixel-identical to the flat render (culling is conservative).
  Framebuffer flat(96, 96);
  flat.clear();
  render_points(flat, camera, tree.extract_lod(8), 1);
  EXPECT_DOUBLE_EQ(image_mse(flat, fb), 0.0);
}

TEST(CulledRenderTest, Validation) {
  const auto source = open_test_subject(23);
  const Octree tree(source->frame(0), 6);
  Framebuffer fb(16, 16);
  Camera camera;
  EXPECT_THROW(render_octree_culled(fb, camera, tree, 0), std::out_of_range);
  EXPECT_THROW(render_octree_culled(fb, camera, tree, 7), std::out_of_range);
  EXPECT_THROW(render_octree_culled(fb, camera, tree, 4, 1, 5),
               std::out_of_range);
  EXPECT_THROW(render_octree_culled(fb, camera, tree, 4, 1, -1),
               std::out_of_range);
}

TEST(OctreeRangeTest, SubtreeLeafRangesPartitionLeaves) {
  const auto source = open_test_subject(24);
  const Octree tree(source->frame(0), 7);
  for (int level : {0, 2, 4}) {
    std::size_t covered = 0;
    std::size_t previous_end = 0;
    for (const OctreeNode& node : tree.level_nodes(level)) {
      const auto [first, last] = tree.subtree_leaf_range(node.key, level);
      EXPECT_EQ(first, previous_end);  // contiguous partition
      EXPECT_EQ(last - first, node.leaf_count);
      covered += last - first;
      previous_end = last;
    }
    EXPECT_EQ(covered, tree.leaf_count());
  }
  // Unoccupied key yields an empty range.
  const auto nodes = tree.level_nodes(2);
  std::uint64_t unused_key = 0;
  std::set<std::uint64_t> used;
  for (const OctreeNode& n : nodes) used.insert(n.key);
  while (used.count(unused_key)) ++unused_key;
  const auto [f, l] = tree.subtree_leaf_range(unused_key, 2);
  EXPECT_EQ(f, l);
}

TEST(OctreeRangeTest, RangeLodConcatenatesToFullLod) {
  const auto source = open_test_subject(25);
  const Octree tree(source->frame(0), 7);
  const int depth = 5;
  const PointCloud full = tree.extract_lod(depth);
  PointCloud assembled;
  for (const OctreeNode& node : tree.level_nodes(2)) {
    const auto [first, last] = tree.subtree_leaf_range(node.key, 2);
    assembled.append(tree.extract_lod_range(depth, first, last));
  }
  ASSERT_EQ(assembled.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(assembled.position(i), full.position(i));
  }
  EXPECT_THROW(tree.extract_lod_range(5, 10, 5), std::out_of_range);
  EXPECT_THROW(tree.extract_lod_range(5, 0, tree.leaf_count() + 1),
               std::out_of_range);
}

// ---------------------------------------------------------- CSV parse ----

TEST(CsvParseTest, RoundTripsWriterOutput) {
  CsvTable table({"name", "count", "ratio"});
  table.add_row({std::string("alpha"), std::int64_t{3}, 0.5});
  table.add_row({std::string("with,comma"), std::int64_t{-7}, 1.25});
  table.add_row({CsvCell{}, std::int64_t{0}, 0.0});
  const auto parsed = parse_csv(table.to_string());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->row_count(), 3U);
  EXPECT_EQ(std::get<std::string>(parsed->at(1, 0)), "with,comma");
  EXPECT_EQ(std::get<std::int64_t>(parsed->at(1, 1)), -7);
  EXPECT_DOUBLE_EQ(std::get<double>(parsed->at(1, 2)), 1.25);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(parsed->at(2, 0)));
}

TEST(CsvParseTest, QuotedNewlinesAndEscapedQuotes) {
  const std::string text =
      "a,b\n\"line1\nline2\",\"say \"\"hi\"\"\"\n";
  const auto parsed = parse_csv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->row_count(), 1U);
  EXPECT_EQ(std::get<std::string>(parsed->at(0, 0)), "line1\nline2");
  EXPECT_EQ(std::get<std::string>(parsed->at(0, 1)), "say \"hi\"");
}

TEST(CsvParseTest, RejectsMalformed) {
  EXPECT_FALSE(parse_csv("").ok());
  EXPECT_FALSE(parse_csv("a,b\n1\n").ok());           // ragged row
  EXPECT_FALSE(parse_csv("a\n\"unterminated\n").ok());  // open quote
}

TEST(CsvParseTest, FileRoundTrip) {
  CsvTable table({"x"});
  table.add_row({1.5});
  const std::string path = testing::TempDir() + "/arvis_csv_rt.csv";
  ASSERT_TRUE(table.write_file(path).ok());
  const auto parsed = read_csv_file(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(std::get<double>(parsed->at(0, 0)), 1.5);
  EXPECT_FALSE(read_csv_file("/no/such/file.csv").ok());
}

// ------------------------------------------------------------ Latency ----

TEST(LatencyTest, ConversionMatchesHandComputation) {
  const DeviceProfile device{"d", 1'000.0, 3.0};  // 1000 pts/ms, 3ms setup
  const double slot_ms = 33.0;                    // service 30'000 pts/slot
  EXPECT_DOUBLE_EQ(backlog_to_latency_ms(0.0, device, slot_ms), 0.0);
  EXPECT_DOUBLE_EQ(backlog_to_latency_ms(30'000.0, device, slot_ms), 33.0);
  EXPECT_DOUBLE_EQ(backlog_to_latency_ms(15'000.0, device, slot_ms), 16.5);
  EXPECT_THROW(backlog_to_latency_ms(1.0, device, 0.0), std::invalid_argument);
  // Slot shorter than setup: no progress possible.
  EXPECT_THROW(backlog_to_latency_ms(1.0, device, 2.0), std::invalid_argument);
}

TEST(LatencyTest, SummaryPercentilesOrdered) {
  Trace trace;
  for (std::size_t t = 0; t < 100; ++t) {
    StepRecord r;
    r.t = t;
    r.backlog_begin = static_cast<double>(t) * 500.0;
    trace.add(r);
  }
  const DeviceProfile device{"d", 1'000.0, 3.0};
  const LatencySummary s = summarize_latency(trace, device, 33.0);
  EXPECT_LT(s.p50_ms, s.p95_ms);
  EXPECT_LT(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.p99_ms, s.max_ms);
  EXPECT_GT(s.mean_ms, 0.0);
  EXPECT_THROW(summarize_latency(Trace{}, device, 33.0),
               std::invalid_argument);
}

// -------------------------------------------------------- Adaptive V ----

struct AdaptiveVFixture : testing::Test {
  static const FrameStatsCache& cache() {
    return EnergyFixture::cache();
  }

  static SimConfig sim_config() {
    SimConfig c;
    c.steps = 6'000;
    c.candidates = {3, 4, 5, 6, 7, 8};
    return c;
  }
};

TEST_F(AdaptiveVFixture, TracksBacklogTarget) {
  const SimConfig config = sim_config();
  const double service = calibrate_service_rate(cache(), 5, 1.3);
  for (double target : {5.0 * service, 50.0 * service}) {
    AdaptiveVDepthController::Options options;
    options.target_backlog = target;
    options.initial_v = 1.0;  // far from any sensible value on purpose
    AdaptiveVDepthController controller(options);
    ConstantService svc(service);
    const Trace trace = run_simulation(config, cache(), controller, svc);
    const double achieved = trace.summarize().time_average_backlog;
    // Within a factor of 2 of the target after convergence from a V that
    // started ~6 orders of magnitude off.
    EXPECT_GT(achieved, 0.5 * target) << "target " << target;
    EXPECT_LT(achieved, 2.0 * target) << "target " << target;
    EXPECT_NE(trace.summarize().stability.verdict,
              StabilityVerdict::kDivergent);
  }
}

TEST_F(AdaptiveVFixture, HigherTargetBuysQuality) {
  const SimConfig config = sim_config();
  const double service = calibrate_service_rate(cache(), 5, 1.3);
  auto run_with_target = [&](double target) {
    AdaptiveVDepthController::Options options;
    options.target_backlog = target;
    AdaptiveVDepthController controller(options);
    ConstantService svc(service);
    return run_simulation(config, cache(), controller, svc)
        .summarize()
        .time_average_quality;
  };
  EXPECT_GT(run_with_target(100.0 * service), run_with_target(3.0 * service));
}

TEST_F(AdaptiveVFixture, OptionValidation) {
  AdaptiveVDepthController::Options options;
  options.target_backlog = 0.0;
  EXPECT_THROW(AdaptiveVDepthController{options}, std::invalid_argument);
  options.target_backlog = 10.0;
  options.gain = 0.0;
  EXPECT_THROW(AdaptiveVDepthController{options}, std::invalid_argument);
  options.gain = 0.05;
  options.v_min = 10.0;
  options.v_max = 1.0;
  EXPECT_THROW(AdaptiveVDepthController{options}, std::invalid_argument);
}

TEST_F(AdaptiveVFixture, RequiresModels) {
  AdaptiveVDepthController controller{AdaptiveVDepthController::Options{}};
  DepthContext empty;
  EXPECT_THROW((void)controller.decide({1, 2}, empty), std::invalid_argument);
  EXPECT_THROW((void)controller.decide({}, empty), std::invalid_argument);
}

// -------------------------------------------------- Hindsight oracle ----

TEST_F(AdaptiveVFixture, HindsightOracleFindsStabilityBoundary) {
  SimConfig config = sim_config();
  config.steps = 1'000;
  // Service sustains depth 5 with margin but not depth 6.
  const double service = calibrate_service_rate(cache(), 5, 1.3);
  const HindsightResult oracle =
      best_fixed_depth_in_hindsight(config, cache(), service);
  EXPECT_EQ(oracle.best_depth, 5);
  EXPECT_NE(oracle.summary.stability.verdict, StabilityVerdict::kDivergent);
}

TEST_F(AdaptiveVFixture, LyapunovMatchesOrBeatsHindsightFixedDepth) {
  // The DPP controller may time-share adjacent depths, so its time-average
  // quality must be at least ~the best fixed depth's (allowing 5% noise).
  SimConfig config = sim_config();
  config.steps = 3'000;
  const double service = calibrate_service_rate(cache(), 5, 1.3);
  const HindsightResult oracle =
      best_fixed_depth_in_hindsight(config, cache(), service);

  LyapunovDepthController controller(
      calibrate_v_for_pivot(cache(), config, 30.0 * service));
  ConstantService svc(service);
  const Trace trace = run_simulation(config, cache(), controller, svc);
  const TraceSummary s = trace.summarize();
  EXPECT_NE(s.stability.verdict, StabilityVerdict::kDivergent);
  EXPECT_GE(s.time_average_quality,
            0.95 * oracle.summary.time_average_quality);
}

TEST_F(AdaptiveVFixture, HindsightOracleOverloadFallsBack) {
  SimConfig config = sim_config();
  config.steps = 1'000;
  // Service below even the min-depth arrival rate: nothing is stable.
  const HindsightResult oracle =
      best_fixed_depth_in_hindsight(config, cache(), 1.0);
  EXPECT_EQ(oracle.best_depth, config.candidates.front());
  EXPECT_EQ(oracle.summary.stability.verdict, StabilityVerdict::kDivergent);
}

// ----------------------------------------------------- Joint control ----

struct JointFixture : testing::Test {
  static const std::vector<int>& depths() {
    static const std::vector<int> d{4, 5, 6, 7};
    return d;
  }
  static const std::vector<int>& bits() {
    static const std::vector<int> b{2, 4, 8};
    return b;
  }
  static const JointTableCache& cache() {
    static const JointTableCache instance(*open_test_subject(95), depths(),
                                          bits(), JointUtilityWeights{}, 6);
    return instance;
  }
};

TEST_F(JointFixture, TableShapeAndMonotonicity) {
  const auto source = open_test_subject(96);
  const JointFrameTable table =
      compute_joint_table(source->frame(0), depths(), bits(), {});
  ASSERT_EQ(table.actions.size(), depths().size() * bits().size());
  ASSERT_EQ(table.utility.size(), table.actions.size());
  ASSERT_EQ(table.bytes.size(), table.actions.size());
  const std::size_t nb = bits().size();
  for (std::size_t di = 0; di < depths().size(); ++di) {
    for (std::size_t bi = 0; bi < nb; ++bi) {
      const std::size_t i = di * nb + bi;
      EXPECT_EQ(table.actions[i].depth, depths()[di]);
      EXPECT_EQ(table.actions[i].color_bits, bits()[bi]);
      // Utility and bytes rise with color bits at fixed depth.
      if (bi > 0) {
        EXPECT_GE(table.utility[i], table.utility[i - 1]);
        EXPECT_GT(table.bytes[i], table.bytes[i - 1]);
      }
      // And with depth at fixed bits.
      if (di > 0) {
        EXPECT_GT(table.utility[i], table.utility[i - nb]);
        EXPECT_GT(table.bytes[i], table.bytes[i - nb]);
      }
    }
  }
}

TEST_F(JointFixture, TableValidation) {
  const auto source = open_test_subject(97);
  const PointCloud frame = source->frame(0);
  EXPECT_THROW(compute_joint_table(frame, {}, bits(), {}),
               std::invalid_argument);
  EXPECT_THROW(compute_joint_table(frame, {5, 5}, bits(), {}),
               std::invalid_argument);
  EXPECT_THROW(compute_joint_table(frame, depths(), {0, 4}, {}),
               std::invalid_argument);
  EXPECT_THROW(compute_joint_table(PointCloud{}, depths(), bits(), {}),
               std::invalid_argument);
  // Uncolored frames are rejected (attribute knob needs colors).
  PointCloud plain;
  plain.add_point({0, 0, 0});
  EXPECT_THROW(compute_joint_table(plain, depths(), bits(), {}),
               std::invalid_argument);
}

TEST_F(JointFixture, AmpleLinkPicksTopAction) {
  // Even with an over-provisioned link, the observed backlog equals the
  // previous slot's arrivals (serve-then-admit order), so V must outweigh
  // Q·Δbytes ≈ bytes² at the byte scale to keep the top action attractive.
  ConstantChannel channel(1e12);
  const JointStreamResult result =
      run_joint_streaming(32, 1e12, cache(), channel);
  for (const JointStepRecord& s : result.steps) {
    EXPECT_EQ(s.base.depth, depths().back());
    EXPECT_EQ(s.color_bits, bits().back());
  }
}

TEST_F(JointFixture, CongestionDegradesBothKnobs) {
  // Link fits roughly the mid action; the controller must settle both knobs
  // below their maxima while staying stable.
  const JointFrameTable& t0 = cache().table(0);
  // Bytes of (depth 5, bits 4): index (1 * 3) + 1.
  const double capacity = t0.bytes[4] * 1.15;
  ConstantChannel channel(capacity);
  const JointStreamResult result =
      run_joint_streaming(2'000, 200.0 * capacity, cache(), channel);
  const Trace trace = result.to_trace();
  const TraceSummary s = trace.summarize();
  EXPECT_NE(s.stability.verdict, StabilityVerdict::kDivergent);
  EXPECT_LT(s.mean_depth, static_cast<double>(depths().back()));
  EXPECT_LT(result.mean_color_bits(), static_cast<double>(bits().back()));
  EXPECT_GT(s.mean_depth, static_cast<double>(depths().front()));
}

TEST_F(JointFixture, RunValidation) {
  ConstantChannel channel(100.0);
  EXPECT_THROW(run_joint_streaming(0, 1.0, cache(), channel),
               std::invalid_argument);
  EXPECT_THROW(run_joint_streaming(10, -1.0, cache(), channel),
               std::invalid_argument);
}

// ------------------------------------------------------ Replication ----

TEST(ReplicationTest, EstimateMetricKnownValues) {
  const MetricEstimate est = estimate_metric({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(est.mean, 2.5);
  EXPECT_DOUBLE_EQ(est.min, 1.0);
  EXPECT_DOUBLE_EQ(est.max, 4.0);
  // s = sqrt(5/3); hw = 1.96*s/2.
  EXPECT_NEAR(est.ci_half_width, 1.96 * std::sqrt(5.0 / 3.0) / 2.0, 1e-9);
  EXPECT_THROW(estimate_metric({1.0}), std::invalid_argument);
}

TEST(ReplicationTest, SeedsProduceDistinctRunsAndTightCi) {
  const auto& cache = EnergyFixture::cache();
  SimConfig config;
  config.steps = 400;
  config.candidates = {3, 4, 5, 6};
  const double rate = calibrate_service_rate(cache, 5, 1.2);
  const double v = calibrate_v_for_pivot(cache, config, 10.0 * rate);

  const ReplicationSummary summary =
      replicate(10, [&](std::uint64_t seed) {
        LyapunovDepthController controller(v);
        JitteredService service(rate, 0.2, Rng(seed));
        return run_simulation(config, cache, controller, service);
      });
  EXPECT_EQ(summary.replicates, 10U);
  EXPECT_EQ(summary.divergent_count, 0U);
  // Jitter varies outcomes, but the CI should be small vs the mean.
  EXPECT_GT(summary.backlog.max, summary.backlog.min);
  EXPECT_LT(summary.quality.ci_half_width, 0.2 * summary.quality.mean);
  EXPECT_THROW(replicate(1, [](std::uint64_t) { return Trace{}; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace arvis
