// Thread-stress subset (ctest -L thread; the TSan preset runs exactly these).
//
// Three contracts under deliberate contention:
//   1. ParallelExecutor fan-outs at 2-8 threads stay bit-for-bit identical
//      to the serial run — the determinism claim the cluster decide phase
//      rests on (paper: distributed per-session controllers must not observe
//      the fan-out width).
//   2. TelemetryCounter::add is safe to call concurrently (relaxed atomic):
//      hammered from every worker, the sum is exact, never torn or dropped.
//   3. The executor's own machinery (claim loop, exception funnel, pool
//      reuse) survives back-to-back jobs under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/executor.hpp"
#include "serving/session_manager.hpp"
#include "serving/telemetry/registry.hpp"

namespace arvis {
namespace {

const FrameStatsCache& stress_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

ServingConfig stress_config(std::size_t threads) {
  ServingConfig config;
  config.steps = 160;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(stress_cache(), config.candidates,
                                   4.0 * stress_cache().workload(0).bytes(5));
  config.admission.enabled = false;  // everyone in: maximise the fan-out
  config.threads = threads;
  return config;
}

std::vector<SessionSpec> churny_specs(std::size_t n, std::size_t steps) {
  std::vector<SessionSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].cache = &stress_cache();
    specs[i].seed = i;
    specs[i].weight = (i % 3 == 0) ? 2.0 : 1.0;
    // Staggered arrivals/departures so lifecycle edges land mid-run (the
    // compaction paths run while the executor is in use).
    specs[i].arrival_slot = (i % 5) * 7;
    specs[i].departure_slot = (i % 4 == 0) ? steps / 2 + i : kNeverDeparts;
  }
  return specs;
}

ServingResult run_at(std::size_t threads, std::size_t n) {
  ServingConfig config = stress_config(threads);
  ConstantChannel channel(5.0e5);
  return run_serving_scenario(config, churny_specs(n, config.steps), channel);
}

TEST(ConcurrencyStressTest, ParallelFanOutBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 96;
  const ServingResult serial = run_at(1, n);
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const ServingResult parallel = run_at(threads, n);
    ASSERT_EQ(parallel.sessions.size(), serial.sessions.size()) << threads;
    for (std::size_t i = 0; i < n; ++i) {
      const SessionOutcome& a = serial.sessions[i];
      const SessionOutcome& b = parallel.sessions[i];
      ASSERT_EQ(a.trace.size(), b.trace.size())
          << "threads=" << threads << " session=" << i;
      for (std::size_t t = 0; t < a.trace.size(); ++t) {
        const StepRecord& x = a.trace.at(t);
        const StepRecord& y = b.trace.at(t);
        ASSERT_EQ(x.depth, y.depth)
            << "threads=" << threads << " session=" << i << " slot=" << t;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.backlog_end),
                  std::bit_cast<std::uint64_t>(y.backlog_end))
            << "threads=" << threads << " session=" << i << " slot=" << t;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.quality),
                  std::bit_cast<std::uint64_t>(y.quality))
            << "threads=" << threads << " session=" << i << " slot=" << t;
      }
    }
    EXPECT_EQ(parallel.fleet.capacity_used, serial.fleet.capacity_used);
  }
}

TEST(ConcurrencyStressTest, ConcurrentCounterAddsAreExact) {
  TelemetryRegistry registry;
  // Handles registered up front (the registry itself is single-threaded);
  // only add() is exercised concurrently, per the instrument contract.
  TelemetryCounter& hits = registry.counter("stress/hits");
  TelemetryCounter& bytes = registry.counter("stress/bytes");
  const std::size_t iterations = 200'000;
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const std::uint64_t hits_before = hits.value();
    const std::uint64_t bytes_before = bytes.value();
    ParallelExecutor executor(threads);
    executor.parallel_for(iterations, [&](std::size_t i) {
      hits.add();
      bytes.add(i % 7 + 1);
    });
    std::uint64_t expect_bytes = 0;
    for (std::size_t i = 0; i < iterations; ++i) expect_bytes += i % 7 + 1;
    EXPECT_EQ(hits.value() - hits_before, iterations) << threads;
    EXPECT_EQ(bytes.value() - bytes_before, expect_bytes) << threads;
  }
}

TEST(ConcurrencyStressTest, ExecutorSurvivesContendedReuseAndExceptions) {
  ParallelExecutor executor(8);
  std::vector<std::atomic<std::uint32_t>> hits(4096);
  for (auto& h : hits) h = 0;
  // Many small back-to-back jobs: the pool's handoff (claim counter,
  // wakeup, completion barrier) is the contended surface, not the work.
  for (int round = 0; round < 50; ++round) {
    executor.parallel_for(hits.size(),
                          [&](std::size_t i) { ++hits[i]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50U);

  // A throwing job must drain, propagate once, and leave the pool usable.
  std::atomic<std::uint32_t> ran{0};
  EXPECT_THROW(executor.parallel_for(512,
                                     [&](std::size_t i) {
                                       ++ran;
                                       if (i % 128 == 13) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 512U);
  executor.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 51U);
}

}  // namespace
}  // namespace arvis
