// Thread-stress subset (ctest -L thread; the TSan preset runs exactly these).
//
// Three contracts under deliberate contention:
//   1. ParallelExecutor fan-outs at 2-8 threads stay bit-for-bit identical
//      to the serial run — the determinism claim the cluster decide phase
//      rests on (paper: distributed per-session controllers must not observe
//      the fan-out width).
//   2. TelemetryCounter::add is safe to call concurrently (relaxed atomic):
//      hammered from every worker, the sum is exact, never torn or dropped.
//   3. The executor's own machinery (claim loop, exception funnel, pool
//      reuse) survives back-to-back jobs under TSan.
//   4. Failover under a parallel decide fan-out: links flap while the
//      cluster's decide phase runs at 2-8 threads — displaced sessions
//      re-enter placement between fan-outs without racing (TSan) and
//      without perturbing determinism (bit-identical to the serial run).
//   5. Migration under a parallel decide fan-out: graded degradation roams
//      across the links and the handover policy moves hot sessions between
//      stores while decide runs at 2-8 threads — extract/inject of hot
//      state must be race-free and leave the run bit-identical to serial.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/cluster.hpp"
#include "serving/executor.hpp"
#include "serving/session_manager.hpp"
#include "serving/telemetry/registry.hpp"

namespace arvis {
namespace {

const FrameStatsCache& stress_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

ServingConfig stress_config(std::size_t threads) {
  ServingConfig config;
  config.steps = 160;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(stress_cache(), config.candidates,
                                   4.0 * stress_cache().workload(0).bytes(5));
  config.admission.enabled = false;  // everyone in: maximise the fan-out
  config.threads = threads;
  return config;
}

std::vector<SessionSpec> churny_specs(std::size_t n, std::size_t steps) {
  std::vector<SessionSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].cache = &stress_cache();
    specs[i].seed = i;
    specs[i].weight = (i % 3 == 0) ? 2.0 : 1.0;
    // Staggered arrivals/departures so lifecycle edges land mid-run (the
    // compaction paths run while the executor is in use).
    specs[i].arrival_slot = (i % 5) * 7;
    specs[i].departure_slot = (i % 4 == 0) ? steps / 2 + i : kNeverDeparts;
  }
  return specs;
}

ServingResult run_at(std::size_t threads, std::size_t n) {
  ServingConfig config = stress_config(threads);
  ConstantChannel channel(5.0e5);
  return run_serving_scenario(config, churny_specs(n, config.steps), channel);
}

TEST(ConcurrencyStressTest, ParallelFanOutBitIdenticalAcrossThreadCounts) {
  const std::size_t n = 96;
  const ServingResult serial = run_at(1, n);
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const ServingResult parallel = run_at(threads, n);
    ASSERT_EQ(parallel.sessions.size(), serial.sessions.size()) << threads;
    for (std::size_t i = 0; i < n; ++i) {
      const SessionOutcome& a = serial.sessions[i];
      const SessionOutcome& b = parallel.sessions[i];
      ASSERT_EQ(a.trace.size(), b.trace.size())
          << "threads=" << threads << " session=" << i;
      for (std::size_t t = 0; t < a.trace.size(); ++t) {
        const StepRecord& x = a.trace.at(t);
        const StepRecord& y = b.trace.at(t);
        ASSERT_EQ(x.depth, y.depth)
            << "threads=" << threads << " session=" << i << " slot=" << t;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.backlog_end),
                  std::bit_cast<std::uint64_t>(y.backlog_end))
            << "threads=" << threads << " session=" << i << " slot=" << t;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.quality),
                  std::bit_cast<std::uint64_t>(y.quality))
            << "threads=" << threads << " session=" << i << " slot=" << t;
      }
    }
    EXPECT_EQ(parallel.fleet.capacity_used, serial.fleet.capacity_used);
  }
}

TEST(ConcurrencyStressTest, ConcurrentCounterAddsAreExact) {
  TelemetryRegistry registry;
  // Handles registered up front (the registry itself is single-threaded);
  // only add() is exercised concurrently, per the instrument contract.
  TelemetryCounter& hits = registry.counter("stress/hits");
  TelemetryCounter& bytes = registry.counter("stress/bytes");
  const std::size_t iterations = 200'000;
  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const std::uint64_t hits_before = hits.value();
    const std::uint64_t bytes_before = bytes.value();
    ParallelExecutor executor(threads);
    executor.parallel_for(iterations, [&](std::size_t i) {
      hits.add();
      bytes.add(i % 7 + 1);
    });
    std::uint64_t expect_bytes = 0;
    for (std::size_t i = 0; i < iterations; ++i) expect_bytes += i % 7 + 1;
    EXPECT_EQ(hits.value() - hits_before, iterations) << threads;
    EXPECT_EQ(bytes.value() - bytes_before, expect_bytes) << threads;
  }
}

TEST(ConcurrencyStressTest, ExecutorSurvivesContendedReuseAndExceptions) {
  ParallelExecutor executor(8);
  std::vector<std::atomic<std::uint32_t>> hits(4096);
  for (auto& h : hits) h = 0;
  // Many small back-to-back jobs: the pool's handoff (claim counter,
  // wakeup, completion barrier) is the contended surface, not the work.
  for (int round = 0; round < 50; ++round) {
    executor.parallel_for(hits.size(),
                          [&](std::size_t i) { ++hits[i]; });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 50U);

  // A throwing job must drain, propagate once, and leave the pool usable.
  std::atomic<std::uint32_t> ran{0};
  EXPECT_THROW(executor.parallel_for(512,
                                     [&](std::size_t i) {
                                       ++ran;
                                       if (i % 128 == 13) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 512U);
  executor.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 51U);
}

ClusterResult run_flapping_cluster(std::size_t threads) {
  ClusterConfig config;
  config.serving = stress_config(threads);
  config.serving.admission.enabled = true;  // failover needs real placement
  config.serving.admission.utilization_target = 1.0;
  config.placement = PlacementPolicy::kLeastLoaded;

  const double load = AdmissionController::cheapest_depth_load(
      stress_cache(), config.serving.candidates);
  const std::size_t links = 4;
  const std::vector<double> means(links, 8.4 * load);

  EdgeCluster cluster(config, means);
  for (const SessionSpec& spec : churny_specs(48, config.serving.steps)) {
    cluster.submit(spec);
  }
  // Two links flap on different cadences, so re-placement waves land while
  // earlier waves' sessions are still streaming on their fallback links.
  for (std::size_t t = 0; t < config.serving.steps; ++t) {
    if (t == 40) cluster.set_link_state(1, true);
    if (t == 60) cluster.set_link_state(2, true);
    if (t == 80) cluster.set_link_state(1, false);
    if (t == 100) cluster.set_link_state(2, false);
    if (t == 120) cluster.set_link_state(3, true);
    cluster.step(means);
  }
  return cluster.finish();
}

TEST(ConcurrencyStressTest, FailoverUnderParallelDecideMatchesSerial) {
  const ClusterResult serial = run_flapping_cluster(1);
  // The flaps actually displaced sessions, and the books reconcile: every
  // displaced session was re-placed, evicted, or closed.
  ASSERT_GT(serial.metrics.failover_displaced, 0U);
  EXPECT_EQ(serial.metrics.failover_displaced,
            serial.metrics.failover_replaced + serial.metrics.fault_evicted +
                serial.metrics.fault_closed);

  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const ClusterResult parallel = run_flapping_cluster(threads);
    EXPECT_EQ(parallel.metrics.failover_displaced,
              serial.metrics.failover_displaced)
        << threads;
    EXPECT_EQ(parallel.metrics.failover_replaced,
              serial.metrics.failover_replaced)
        << threads;
    EXPECT_EQ(parallel.metrics.fault_evicted, serial.metrics.fault_evicted)
        << threads;
    EXPECT_EQ(parallel.metrics.fault_closed, serial.metrics.fault_closed)
        << threads;
    ASSERT_EQ(parallel.sessions.size(), serial.sessions.size()) << threads;
    for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
      const ClusterSessionOutcome& a = serial.sessions[i];
      const ClusterSessionOutcome& b = parallel.sessions[i];
      ASSERT_EQ(a.link, b.link) << "threads=" << threads << " session=" << i;
      ASSERT_EQ(a.failovers, b.failovers)
          << "threads=" << threads << " session=" << i;
      ASSERT_EQ(a.fault_evicted, b.fault_evicted)
          << "threads=" << threads << " session=" << i;
      ASSERT_EQ(a.session.trace.size(), b.session.trace.size())
          << "threads=" << threads << " session=" << i;
      for (std::size_t t = 0; t < a.session.trace.size(); ++t) {
        const StepRecord& x = a.session.trace.at(t);
        const StepRecord& y = b.session.trace.at(t);
        ASSERT_EQ(x.depth, y.depth)
            << "threads=" << threads << " session=" << i << " slot=" << t;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.backlog_end),
                  std::bit_cast<std::uint64_t>(y.backlog_end))
            << "threads=" << threads << " session=" << i << " slot=" << t;
      }
    }
    EXPECT_EQ(parallel.metrics.fleet.capacity_used,
              serial.metrics.fleet.capacity_used)
        << threads;
  }
}

ClusterResult run_migrating_cluster(std::size_t threads) {
  ClusterConfig config;
  config.serving = stress_config(threads);
  config.serving.admission.enabled = true;
  config.serving.admission.utilization_target = 1.0;
  config.placement = PlacementPolicy::kLeastLoaded;
  config.handover.enabled = true;
  config.handover.delay_weight = 0.1;
  config.handover.rebalance_on_departure = true;

  const double load = AdmissionController::cheapest_depth_load(
      stress_cache(), config.serving.candidates);
  const std::size_t links = 4;
  const std::vector<double> means(links, 8.4 * load);

  EdgeCluster cluster(config, means);
  for (const SessionSpec& spec : churny_specs(48, config.serving.steps)) {
    cluster.submit(spec);
  }
  // Graded degradation roams across the links (with one hard flap mixed in)
  // so the handover policy migrates sessions while the decide fan-out is
  // live: the hot-state extract/inject path must not race the executor and
  // must not perturb determinism.
  for (std::size_t t = 0; t < config.serving.steps; ++t) {
    if (t == 30) cluster.set_link_degrade(0, 0.2, 3.0);
    if (t == 60) cluster.set_link_degrade(0, 1.0, 0.0);
    if (t == 60) cluster.set_link_degrade(2, 0.15, 4.0);
    if (t == 80) cluster.set_link_state(1, true);
    if (t == 100) cluster.set_link_state(1, false);
    if (t == 110) cluster.set_link_degrade(2, 1.0, 0.0);
    if (t == 120) cluster.set_link_degrade(3, 0.25, 2.0);
    cluster.step(means);
  }
  return cluster.finish();
}

TEST(ConcurrencyStressTest, MigrationUnderParallelDecideMatchesSerial) {
  const ClusterResult serial = run_migrating_cluster(1);
  // The degradation actually triggered migrations, and the books are exact.
  ASSERT_GT(serial.metrics.migrations_completed, 0U);
  EXPECT_EQ(serial.metrics.migrations_requested,
            serial.metrics.migrations_completed +
                serial.metrics.migrations_aborted);
  EXPECT_EQ(serial.metrics.failover_displaced,
            serial.metrics.failover_replaced + serial.metrics.fault_evicted +
                serial.metrics.fault_closed);

  for (const std::size_t threads : {2UL, 4UL, 8UL}) {
    const ClusterResult parallel = run_migrating_cluster(threads);
    EXPECT_EQ(parallel.metrics.migrations_requested,
              serial.metrics.migrations_requested)
        << threads;
    EXPECT_EQ(parallel.metrics.migrations_completed,
              serial.metrics.migrations_completed)
        << threads;
    EXPECT_EQ(parallel.metrics.migrations_aborted,
              serial.metrics.migrations_aborted)
        << threads;
    ASSERT_EQ(parallel.sessions.size(), serial.sessions.size()) << threads;
    for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
      const ClusterSessionOutcome& a = serial.sessions[i];
      const ClusterSessionOutcome& b = parallel.sessions[i];
      ASSERT_EQ(a.link, b.link) << "threads=" << threads << " session=" << i;
      ASSERT_EQ(a.migrations, b.migrations)
          << "threads=" << threads << " session=" << i;
      ASSERT_EQ(a.failovers, b.failovers)
          << "threads=" << threads << " session=" << i;
      ASSERT_EQ(a.session.trace.size(), b.session.trace.size())
          << "threads=" << threads << " session=" << i;
      for (std::size_t t = 0; t < a.session.trace.size(); ++t) {
        const StepRecord& x = a.session.trace.at(t);
        const StepRecord& y = b.session.trace.at(t);
        ASSERT_EQ(x.depth, y.depth)
            << "threads=" << threads << " session=" << i << " slot=" << t;
        ASSERT_EQ(std::bit_cast<std::uint64_t>(x.backlog_end),
                  std::bit_cast<std::uint64_t>(y.backlog_end))
            << "threads=" << threads << " session=" << i << " slot=" << t;
      }
    }
    EXPECT_EQ(parallel.metrics.fleet.capacity_used,
              serial.metrics.fleet.capacity_used)
        << threads;
  }
}

}  // namespace
}  // namespace arvis
