// Tests for the multi-session edge serving runtime: scheduler policy
// invariants, admission boundaries, session churn bookkeeping, and the
// determinism contract of the parallel executor (parallel == serial,
// bit for bit).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <variant>

#include "common/rng.hpp"
#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/executor.hpp"
#include "serving/metrics.hpp"
#include "serving/scheduler.hpp"
#include "serving/session_manager.hpp"
#include "sim/replication.hpp"

namespace arvis {
namespace {

const FrameStatsCache& shared_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

double cheapest_load(const std::vector<int>& candidates) {
  return AdmissionController::cheapest_depth_load(shared_cache(), candidates);
}

// ------------------------------------------------------------ Fairness ----

TEST(ServingMetricsTest, JainDegenerateCases) {
  // The new home of jain_fairness_index fixes the all-equal degenerate
  // cases: any constant fleet is perfectly fair, zero included.
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({0.0, 0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index({7.5, 7.5}), 1.0);
  EXPECT_NEAR(jain_fairness_index({1, 0, 0, 0}), 0.25, 1e-12);
  // n-1 equal plus one dominant lands strictly between 1/n and 1.
  const double mixed = jain_fairness_index({10, 1, 1, 1});
  EXPECT_GT(mixed, 0.25);
  EXPECT_LT(mixed, 1.0);
}

// ---------------------------------------------------------- Schedulers ----

std::vector<SchedulerDemand> random_demands(Rng& rng, std::size_t n) {
  std::vector<SchedulerDemand> demands(n);
  for (SchedulerDemand& d : demands) {
    d.backlog = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 5'000.0);
    d.arrivals = rng.uniform(0.0, 1'000.0);
    d.weight = rng.bernoulli(0.5) ? 1.0 : rng.uniform(0.5, 4.0);
  }
  return demands;
}

TEST(SchedulerTest, AllPoliciesConserveCapacity) {
  Rng rng(7);
  std::vector<double> shares;
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kEqualShare, SchedulerPolicy::kWorkConserving,
        SchedulerPolicy::kProportionalFair, SchedulerPolicy::kWeightedPriority,
        SchedulerPolicy::kDeficitRoundRobin}) {
    auto scheduler = make_scheduler(policy);
    for (int trial = 0; trial < 200; ++trial) {
      const std::size_t n = 1 + static_cast<std::size_t>(rng.below(12));
      const auto demands = random_demands(rng, n);
      const double capacity = rng.uniform(0.0, 20'000.0);
      scheduler->allocate(capacity, demands, shares);
      ASSERT_EQ(shares.size(), n) << scheduler->name();
      double total = 0.0;
      for (double s : shares) {
        EXPECT_GE(s, 0.0) << scheduler->name();
        total += s;
      }
      EXPECT_LE(total, capacity * (1.0 + 1e-9) + 1e-9) << scheduler->name();
    }
  }
}

TEST(SchedulerTest, WorkConservingNeverWastesWhileBacklogged) {
  Rng rng(11);
  WorkConservingScheduler scheduler;
  std::vector<double> shares;
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.below(12));
    const auto demands = random_demands(rng, n);
    const double total_demand = std::accumulate(
        demands.begin(), demands.end(), 0.0,
        [](double acc, const SchedulerDemand& d) { return acc + d.total(); });
    // Capacity strictly below total demand: some queue stays backlogged, so
    // a work-conserving allocation must hand out every byte.
    const double capacity = rng.uniform(0.0, 0.95) * total_demand;
    scheduler.allocate(capacity, demands, shares);
    const double allocated = std::accumulate(shares.begin(), shares.end(), 0.0);
    EXPECT_NEAR(allocated, capacity, 1e-6 * std::max(capacity, 1.0));
    // And nobody is granted beyond their demand while others starve.
    for (std::size_t i = 0; i < shares.size(); ++i) {
      EXPECT_LE(shares[i], demands[i].total() * (1.0 + 1e-9) + 1e-9);
    }
  }
}

TEST(SchedulerTest, WorkConservingMeetsAllDemandsUnderLightLoad) {
  WorkConservingScheduler scheduler;
  std::vector<double> shares;
  const std::vector<SchedulerDemand> demands{
      {100.0, 50.0, 1.0}, {0.0, 0.0, 1.0}, {10.0, 5.0, 1.0}};
  scheduler.allocate(1'000.0, demands, shares);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_GE(shares[i], demands[i].total());
  }
  // Full pipe still handed out (excess is wasted by the queues, not here).
  EXPECT_NEAR(shares[0] + shares[1] + shares[2], 1'000.0, 1e-9);
}

TEST(SchedulerTest, ProportionalFairSplitsByWeightedDemand) {
  ProportionalFairScheduler scheduler;
  std::vector<double> shares;
  // Overload with equal weights: pure proportional split by demand.
  scheduler.allocate(200.0, {{100.0, 0.0, 1.0}, {300.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 150.0, 1e-9);
  // Weight doubles a session's pull.
  scheduler.allocate(120.0, {{100.0, 0.0, 2.0}, {100.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 80.0, 1e-9);
  EXPECT_NEAR(shares[1], 40.0, 1e-9);
  // A capped heavy-weight session's surplus flows to the rest instead of
  // being wasted.
  scheduler.allocate(200.0, {{100.0, 0.0, 4.0}, {300.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 100.0, 1e-9);
  EXPECT_NEAR(shares[1], 100.0, 1e-9);
  // Light load: everyone gets exactly their demand, never more.
  scheduler.allocate(1'000.0, {{100.0, 0.0, 1.0}, {300.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 100.0, 1e-9);
  EXPECT_NEAR(shares[1], 300.0, 1e-9);
  // A weight-0 session draws no proportional offer but is not starved:
  // once only zero-weight demand remains, the surplus water-fills it.
  scheduler.allocate(100.0, {{50.0, 0.0, 0.0}, {10.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 10.0, 1e-9);
}

TEST(SchedulerTest, WeightedPriorityGroupsWeightsFromDifferentArithmetic) {
  WeightedPriorityScheduler scheduler;
  std::vector<double> shares;
  // 0.1 + 0.2 != 0.3 in binary floating point; exact == grouping split these
  // into a phantom priority tier and starved the "lower" one. The sorted-
  // permutation grouping treats them as one tier: equal-split water-fill.
  const double w_sum = 0.1 + 0.2;
  const double w_lit = 0.3;
  ASSERT_NE(w_sum, w_lit);  // the premise: different arithmetic paths differ
  scheduler.allocate(100.0, {{150.0, 0.0, w_sum}, {150.0, 0.0, w_lit}},
                     shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 50.0, 1e-9);
  // Order-independent: the literal first gets the same split.
  scheduler.allocate(100.0, {{150.0, 0.0, w_lit}, {150.0, 0.0, w_sum}},
                     shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 50.0, 1e-9);
  // Humanly distinct weights still tier strictly.
  scheduler.allocate(100.0, {{150.0, 0.0, 0.3}, {150.0, 0.0, 0.31}}, shares);
  EXPECT_NEAR(shares[0], 0.0, 1e-9);
  EXPECT_NEAR(shares[1], 100.0, 1e-9);
}

TEST(SchedulerTest, WeightedPriorityServesTiersInOrder) {
  WeightedPriorityScheduler scheduler;
  std::vector<double> shares;
  // The weight-2 tier drains fully before the weight-1 tier sees a byte.
  scheduler.allocate(200.0, {{150.0, 0.0, 2.0}, {150.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 150.0, 1e-9);
  EXPECT_NEAR(shares[1], 50.0, 1e-9);
  // Under overload the low tier starves entirely.
  scheduler.allocate(100.0, {{150.0, 0.0, 2.0}, {150.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 100.0, 1e-9);
  EXPECT_NEAR(shares[1], 0.0, 1e-9);
  // Equal weights degenerate to equal-split water-filling.
  scheduler.allocate(100.0, {{150.0, 0.0, 1.0}, {150.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 50.0, 1e-9);
}

TEST(SchedulerTest, ProportionalFairEwmaFavorsHistoricallyStarved) {
  ProportionalFairScheduler scheduler;
  std::vector<double> shares;
  // Equal weight, equal demand; session 0 has been drinking 1000 bytes/slot
  // while session 1 got nothing. True PF hands the starved session the lion's
  // share: pulls are 1/1001 vs 1/1.
  scheduler.allocate(100.0,
                     {{200.0, 0.0, 1.0, 1'000.0}, {200.0, 0.0, 1.0, 0.0}},
                     shares);
  EXPECT_LT(shares[0], 1.0);
  EXPECT_GT(shares[1], 99.0);
  EXPECT_NEAR(shares[0] + shares[1], 100.0, 1e-9);
  // Equal histories collapse to the legacy demand-proportional split.
  scheduler.allocate(200.0,
                     {{100.0, 0.0, 1.0, 500.0}, {300.0, 0.0, 1.0, 500.0}},
                     shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 150.0, 1e-9);
  // No history (< 0, the default) is the legacy behaviour bit for bit.
  scheduler.allocate(200.0, {{100.0, 0.0, 1.0}, {300.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 150.0, 1e-9);
}

TEST(SchedulerTest, DeficitRoundRobinIsWeightedMaxMin) {
  DeficitRoundRobinScheduler scheduler;
  std::vector<double> shares;
  // Equal weights under overload: equal split.
  scheduler.allocate(100.0, {{150.0, 0.0, 1.0}, {150.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);
  EXPECT_NEAR(shares[1], 50.0, 1e-9);
  // 2:1 weights under overload: 2:1 split.
  scheduler.allocate(90.0, {{150.0, 0.0, 2.0}, {150.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 60.0, 1e-9);
  EXPECT_NEAR(shares[1], 30.0, 1e-9);
  // Grants cap at demand; the surplus reaches the still-hungry session
  // (max-min, not strict priority).
  scheduler.allocate(300.0, {{100.0, 0.0, 2.0}, {150.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 100.0, 1e-9);
  EXPECT_NEAR(shares[1], 150.0, 1e-9);
  // Zero-weight sessions are served from leftovers only.
  scheduler.allocate(100.0, {{80.0, 0.0, 0.0}, {50.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[1], 50.0, 1e-9);
  EXPECT_NEAR(shares[0], 50.0, 1e-9);  // leftover 50 of the 80 wanted
  // Under overload nothing leaks to weight zero.
  scheduler.allocate(40.0, {{80.0, 0.0, 0.0}, {50.0, 0.0, 1.0}}, shares);
  EXPECT_NEAR(shares[0], 0.0, 1e-9);
  EXPECT_NEAR(shares[1], 40.0, 1e-9);
}

TEST(SchedulerTest, DeficitRoundRobinHandlesVanishinglySmallWeights) {
  // The per-round quantum is recomputed from the surviving ring's weight, so
  // a near-zero-weight straggler (trace files accept any weight >= 0) drains
  // in O(1) rounds instead of ~capacity/(capacity * w/Σw) of them — this
  // call used to take hours at weight 1e-12.
  DeficitRoundRobinScheduler scheduler;
  std::vector<double> shares;
  scheduler.allocate(1'000.0, {{1'000.0, 0.0, 1e-12}, {10.0, 0.0, 1.0}},
                     shares);
  EXPECT_NEAR(shares[1], 10.0, 1e-9);
  EXPECT_NEAR(shares[0], 990.0, 1e-6);
}

TEST(SchedulerTest, DeficitRoundRobinRotatesTheResidue) {
  // Capacity runs dry mid-round, so whoever is visited first in the final
  // round keeps the residue; the cursor rotates that advantage across slots.
  DeficitRoundRobinScheduler scheduler;
  std::vector<double> shares;
  const std::vector<SchedulerDemand> demands{
      {5.0, 0.0, 1.0}, {100.0, 0.0, 1.0}, {100.0, 0.0, 1.0}};
  scheduler.allocate(30.0, demands, shares);  // rotation starts at index 0
  const std::vector<double> first = shares;
  scheduler.allocate(30.0, demands, shares);
  scheduler.allocate(30.0, demands, shares);  // rotation starts at index 2
  const std::vector<double> third = shares;
  // Session 0's tiny demand is always met; the big pair split the rest, and
  // the 5-byte residue lands on whichever of them the rotation favours.
  EXPECT_NEAR(first[0], 5.0, 1e-9);
  EXPECT_NEAR(third[0], 5.0, 1e-9);
  EXPECT_NEAR(first[1], 15.0, 1e-9);
  EXPECT_NEAR(first[2], 10.0, 1e-9);
  EXPECT_NEAR(third[1], 10.0, 1e-9);
  EXPECT_NEAR(third[2], 15.0, 1e-9);
}

// ------------------------------------- scheduler fast-path equivalence ----
// Reference implementations of the pre-incremental generic algorithms (as
// they stood before the fused first rounds, cached tier permutation, and
// lazy DRR residue landed). The production kernels' fast paths must
// reproduce them share for share — exact doubles, not NEAR.

namespace ref {

double water_fill(double capacity, const std::vector<SchedulerDemand>& d,
                  std::vector<std::size_t>& unsatisfied,
                  std::vector<double>& shares) {
  while (capacity > 0.0 && !unsatisfied.empty()) {
    const double slice = capacity / static_cast<double>(unsatisfied.size());
    std::size_t kept = 0;
    double granted = 0.0;
    for (std::size_t i : unsatisfied) {
      const double want = d[i].total() - shares[i];
      if (want <= slice) {
        shares[i] += want;
        granted += want;
      } else {
        shares[i] += slice;
        granted += slice;
        unsatisfied[kept++] = i;
      }
    }
    capacity -= granted;
    if (kept == unsatisfied.size()) break;
    unsatisfied.resize(kept);
  }
  return std::max(capacity, 0.0);
}

void work_conserving(double capacity, const std::vector<SchedulerDemand>& d,
                     std::vector<double>& shares) {
  const std::size_t n = d.size();
  shares.assign(n, 0.0);
  if (n == 0) return;
  std::vector<std::size_t> unsatisfied(n);
  for (std::size_t i = 0; i < n; ++i) unsatisfied[i] = i;
  const double leftover = water_fill(capacity, d, unsatisfied, shares);
  if (leftover > 0.0) {
    const double bonus = leftover / static_cast<double>(n);
    for (double& s : shares) s += bonus;
  }
}

void proportional_fair(double capacity, const std::vector<SchedulerDemand>& d,
                       std::vector<double>& shares) {
  const std::size_t n = d.size();
  shares.assign(n, 0.0);
  if (n == 0) return;
  const auto pull = [&](std::size_t i) {
    const double want = d[i].total() - shares[i];
    const double history = d[i].ewma_throughput;
    const double denom = history >= 0.0 ? 1.0 + history : 1.0;
    return d[i].weight * want / denom;
  };
  std::vector<std::size_t> unsatisfied(n);
  for (std::size_t i = 0; i < n; ++i) unsatisfied[i] = i;
  while (capacity > 0.0 && !unsatisfied.empty()) {
    double mass = 0.0;
    for (std::size_t i : unsatisfied) mass += pull(i);
    if (mass <= 0.0) {
      water_fill(capacity, d, unsatisfied, shares);
      break;
    }
    std::size_t kept = 0;
    double granted = 0.0;
    bool capped = false;
    for (std::size_t i : unsatisfied) {
      const double want = d[i].total() - shares[i];
      const double offer = capacity * pull(i) / mass;
      if (want <= offer) {
        shares[i] += want;
        granted += want;
        capped = true;
      } else {
        shares[i] += offer;
        granted += offer;
        unsatisfied[kept++] = i;
      }
    }
    capacity -= granted;
    if (!capped) break;
    unsatisfied.resize(kept);
  }
}

void weighted_priority(double capacity, const std::vector<SchedulerDemand>& d,
                       std::vector<double>& shares) {
  const std::size_t n = d.size();
  shares.assign(n, 0.0);
  if (n == 0) return;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (d[a].weight != d[b].weight) return d[a].weight > d[b].weight;
    return a < b;
  });
  const auto same_tier = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max(std::abs(a), std::abs(b));
  };
  std::size_t begin = 0;
  while (begin < n && capacity > 0.0) {
    std::size_t end = begin + 1;
    while (end < n &&
           same_tier(d[perm[end - 1]].weight, d[perm[end]].weight)) {
      ++end;
    }
    std::vector<std::size_t> tier(perm.begin() + begin, perm.begin() + end);
    capacity = water_fill(capacity, d, tier, shares);
    begin = end;
  }
}

void deficit_round_robin(double capacity,
                         const std::vector<SchedulerDemand>& d,
                         std::size_t cursor, std::vector<double>& shares) {
  const std::size_t n = d.size();
  shares.assign(n, 0.0);
  if (n == 0) return;
  const std::size_t start = cursor % n;
  std::vector<std::size_t> ring;
  double ring_weight = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t i = (start + j) % n;
    if (d[i].weight > 0.0 && d[i].total() > 0.0) {
      ring.push_back(i);
      ring_weight += d[i].weight;
    }
  }
  double remaining = capacity;
  if (!ring.empty() && ring_weight > 0.0 && remaining > 0.0) {
    std::vector<double> deficit(n, 0.0);
    while (remaining > 0.0 && !ring.empty()) {
      const double quantum = capacity / ring_weight;
      std::size_t kept = 0;
      double kept_weight = 0.0;
      for (std::size_t idx = 0; idx < ring.size() && remaining > 0.0; ++idx) {
        const std::size_t i = ring[idx];
        deficit[i] += quantum * d[i].weight;
        const double want = d[i].total() - shares[i];
        const double grant = std::min({deficit[i], want, remaining});
        shares[i] += grant;
        deficit[i] -= grant;
        remaining -= grant;
        if (want - grant > 0.0) {
          ring[kept++] = i;
          kept_weight += d[i].weight;
        }
      }
      ring.resize(kept);
      ring_weight = kept_weight;
    }
  }
  if (remaining > 0.0) {
    std::vector<std::size_t> leftover;
    for (std::size_t i = 0; i < n; ++i) {
      if (d[i].weight <= 0.0 && d[i].total() - shares[i] > 0.0) {
        leftover.push_back(i);
      }
    }
    if (!leftover.empty()) water_fill(remaining, d, leftover, shares);
  }
}

}  // namespace ref

TEST(SchedulerTest, FastPathsMatchReferenceBitForBit) {
  Rng rng(4242);
  WorkConservingScheduler wc;
  ProportionalFairScheduler pf;
  WeightedPriorityScheduler wp;
  std::vector<double> shares, want, hinted;
  std::size_t drr_calls = 0;
  DeficitRoundRobinScheduler drr;

  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = rng.below(18);
    std::vector<SchedulerDemand> demands = random_demands(rng, n);
    // Exercise every regime the fast paths special-case: uniform weights,
    // PF history, zero-demand and zero-weight stragglers, dry capacity.
    const bool uniform = rng.bernoulli(0.4);
    for (SchedulerDemand& d : demands) {
      if (uniform) d.weight = 1.5;
      if (rng.bernoulli(0.3)) d.ewma_throughput = rng.uniform(0.0, 2'000.0);
      if (rng.bernoulli(0.1)) d.weight = 0.0;
      if (rng.bernoulli(0.1)) {
        d.backlog = 0.0;
        d.arrivals = 0.0;
      }
    }
    double total = 0.0;
    for (const SchedulerDemand& d : demands) total += d.total();
    const double capacity =
        rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, total * 1.4 + 10.0);

    // SoA mirror of the demand set, carrying the aggregate hints the hot
    // path would supply.
    std::vector<double> backlog(n), arrivals(n), weight(n), ewma(n);
    bool bits_uniform = true;
    for (std::size_t i = 0; i < n; ++i) {
      backlog[i] = demands[i].backlog;
      arrivals[i] = demands[i].arrivals;
      weight[i] = demands[i].weight;
      ewma[i] = demands[i].ewma_throughput;
      if (weight[i] != weight[0]) bits_uniform = false;
    }
    SchedulerInput input{backlog, arrivals, weight, ewma};
    input.membership_generation = static_cast<std::uint64_t>(iter) + 1;
    input.uniform_weights = bits_uniform ? 1 : 0;

    ref::work_conserving(capacity, demands, want);
    wc.allocate(capacity, demands, shares);  // adapter path, no hints
    ASSERT_EQ(shares, want) << "wc iter " << iter;
    wc.allocate(capacity, input, hinted);
    ASSERT_EQ(hinted, want) << "wc hinted iter " << iter;

    ref::proportional_fair(capacity, demands, want);
    pf.allocate(capacity, demands, shares);
    ASSERT_EQ(shares, want) << "pf iter " << iter;
    pf.allocate(capacity, input, hinted);
    ASSERT_EQ(hinted, want) << "pf hinted iter " << iter;

    ref::weighted_priority(capacity, demands, want);
    wp.allocate(capacity, demands, shares);
    ASSERT_EQ(shares, want) << "wp iter " << iter;
    // Twice with the same generation: the second call replays the cached
    // tier permutation and must not drift by a bit.
    wp.allocate(capacity, input, hinted);
    ASSERT_EQ(hinted, want) << "wp hinted iter " << iter;
    wp.allocate(capacity, input, hinted);
    ASSERT_EQ(hinted, want) << "wp cached iter " << iter;

    // DRR is stateful (rotation cursor, lazy residue): drive one scheduler
    // object across all iterations and mirror the cursor in the reference
    // (the cursor only advances on non-empty demand sets).
    ref::deficit_round_robin(capacity, demands, drr_calls, want);
    if (n > 0) ++drr_calls;
    drr.allocate(capacity, demands, shares);
    ASSERT_EQ(shares, want) << "drr iter " << iter;
    ref::deficit_round_robin(capacity, demands, drr_calls, want);
    if (n > 0) ++drr_calls;
    drr.allocate(capacity, input, hinted);
    ASSERT_EQ(hinted, want) << "drr hinted iter " << iter;
  }
}

// ----------------------------------------------------------- Admission ----

TEST(AdmissionTest, AcceptRejectBoundary) {
  const std::vector<int> candidates{3, 4, 5, 6};
  const double load = cheapest_load(candidates);
  ASSERT_GT(load, 0.0);

  // Room for exactly two sessions' cheapest-depth load.
  AdmissionConfig config;
  config.utilization_target = 1.0;
  AdmissionController admission(config, 2.5 * load);

  const auto first = admission.try_admit(shared_cache(), candidates);
  EXPECT_TRUE(first.admitted);
  EXPECT_NEAR(first.cheapest_load, load, 1e-9);
  EXPECT_GE(first.max_sustainable_depth, 3);
  const auto second = admission.try_admit(shared_cache(), candidates);
  EXPECT_TRUE(second.admitted);
  // Third would need 3x the load on a 2.5x link: rejected, and the
  // stability-region probe reports "not even the cheapest depth".
  const auto third = admission.try_admit(shared_cache(), candidates);
  EXPECT_FALSE(third.admitted);
  EXPECT_EQ(third.max_sustainable_depth, 2);

  EXPECT_EQ(admission.stats().attempts, 3U);
  EXPECT_EQ(admission.stats().accepted, 2U);
  EXPECT_EQ(admission.stats().rejected, 1U);
  EXPECT_NEAR(admission.reserved_load(), 2.0 * load, 1e-9);

  // A departure frees the slot.
  admission.release(load);
  EXPECT_TRUE(admission.try_admit(shared_cache(), candidates).admitted);
}

TEST(AdmissionTest, DisabledAdmitsEverything) {
  AdmissionConfig config;
  config.enabled = false;
  AdmissionController admission(config, 1.0);  // capacity irrelevant
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(admission.try_admit(shared_cache(), {3, 4, 5}).admitted);
  }
  EXPECT_EQ(admission.stats().rejected, 0U);
}

TEST(AdmissionTest, Validation) {
  AdmissionConfig config;
  EXPECT_THROW(AdmissionController(config, 0.0), std::invalid_argument);
  config.utilization_target = 1.5;
  EXPECT_THROW(AdmissionController(config, 100.0), std::invalid_argument);
  config.utilization_target = 0.9;
  AdmissionController admission(config, 1e9);
  EXPECT_THROW(admission.try_admit(shared_cache(), {}),
               std::invalid_argument);
}

// ------------------------------------------------------------ Executor ----

TEST(ParallelExecutorTest, RunsEveryIndexExactlyOnce) {
  ParallelExecutor executor(4);
  EXPECT_EQ(executor.threads(), 4U);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  executor.parallel_for(257, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable across jobs (the pool persists between calls).
  executor.parallel_for(257, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 2);
  executor.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ParallelExecutorTest, PropagatesExceptions) {
  ParallelExecutor executor(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      executor.parallel_for(64,
                            [&](std::size_t i) {
                              ++ran;
                              if (i == 13) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  // The loop drains instead of abandoning indices mid-flight.
  EXPECT_EQ(ran.load(), 64);
  // The pool survives a throwing job.
  executor.parallel_for(8, [](std::size_t) {});

  // The serial (threads == 1) inline path honours the same drain contract,
  // so the error path is thread-count-invariant too.
  ParallelExecutor serial(1);
  ran = 0;
  EXPECT_THROW(
      serial.parallel_for(64,
                          [&](std::size_t i) {
                            ++ran;
                            if (i == 13) throw std::runtime_error("boom");
                          }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 64);
}

// ---------------------------------------------------------------- Churn ----

ServingConfig small_config() {
  ServingConfig config;
  config.steps = 120;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(shared_cache(), config.candidates,
                                   4.0 * shared_cache().workload(0).bytes(5));
  config.admission.utilization_target = 1.0;
  return config;
}

TEST(SessionManagerTest, ChurnBookkeeping) {
  ServingConfig config = small_config();
  const double load = cheapest_load(config.candidates);
  // Fits two cheapest-depth sessions, not three.
  ConstantChannel channel(2.5 * load);
  SessionManager manager(config, channel.mean_capacity_bytes());

  SessionSpec spec;
  spec.cache = &shared_cache();
  spec.departure_slot = 60;
  const std::size_t a = manager.submit(spec);  // slots [0, 60)
  spec.arrival_slot = 20;
  spec.departure_slot = kNeverDeparts;
  const std::size_t b = manager.submit(spec);  // slots [20, end)
  spec.arrival_slot = 30;
  const std::size_t c = manager.submit(spec);  // rejected: link is full
  spec.arrival_slot = 80;
  const std::size_t d = manager.submit(spec);  // admitted: a left at 60

  EXPECT_EQ(manager.active_count(), 0U);
  for (std::size_t t = 0; t < config.steps; ++t) {
    manager.step(channel.next_capacity_bytes());
    if (t < 20) {
      EXPECT_EQ(manager.active_count(), 1U) << t;
    } else if (t < 60) {
      EXPECT_EQ(manager.active_count(), 2U) << t;
    } else if (t < 80) {
      EXPECT_EQ(manager.active_count(), 1U) << t;
    } else {
      EXPECT_EQ(manager.active_count(), 2U) << t;
    }
  }

  const ServingResult result = manager.finish();
  ASSERT_EQ(result.sessions.size(), 4U);
  EXPECT_TRUE(result.sessions[a].admitted);
  EXPECT_EQ(result.sessions[a].trace.size(), 60U);
  EXPECT_EQ(result.sessions[a].departure_slot, 60U);
  EXPECT_TRUE(result.sessions[b].admitted);
  EXPECT_EQ(result.sessions[b].trace.size(), 100U);
  EXPECT_EQ(result.sessions[b].departure_slot, 120U);
  EXPECT_FALSE(result.sessions[c].admitted);
  EXPECT_EQ(result.sessions[c].trace.size(), 0U);
  EXPECT_TRUE(result.sessions[d].admitted);
  EXPECT_EQ(result.sessions[d].trace.size(), 40U);

  EXPECT_EQ(result.admission.attempts, 4U);
  EXPECT_EQ(result.admission.accepted, 3U);
  EXPECT_EQ(result.admission.rejected, 1U);
  EXPECT_EQ(result.fleet.sessions_admitted, 3U);
  EXPECT_EQ(result.fleet.sessions_rejected, 1U);
  EXPECT_EQ(result.fleet.peak_concurrency, 2U);
  EXPECT_EQ(result.session_table.row_count(), 4U);

  EXPECT_THROW(manager.step(1.0), std::logic_error);
  EXPECT_THROW(manager.submit(spec), std::logic_error);
}

TEST(SessionManagerTest, Validation) {
  ServingConfig config = small_config();
  SessionManager manager(config, 1e6);
  SessionSpec spec;
  EXPECT_THROW(manager.submit(spec), std::invalid_argument);  // null cache
  spec.cache = &shared_cache();
  spec.arrival_slot = 10;
  spec.departure_slot = 10;
  EXPECT_THROW(manager.submit(spec), std::invalid_argument);
  spec.departure_slot = 11;
  spec.weight = -1.0;
  EXPECT_THROW(manager.submit(spec), std::invalid_argument);

  // A window that fully elapsed before submission can never stream a slot
  // inside its declared lifetime.
  SessionSpec elapsed;
  elapsed.cache = &shared_cache();
  elapsed.departure_slot = 3;
  for (int t = 0; t < 5; ++t) manager.step(1e6);
  EXPECT_THROW(manager.submit(elapsed), std::invalid_argument);
  // An elapsed *arrival* with a live departure is fine: it arrives now.
  elapsed.departure_slot = 100;
  EXPECT_NO_THROW(manager.submit(elapsed));

  ServingConfig bad = config;
  bad.steps = 0;
  EXPECT_THROW(SessionManager(bad, 1e6), std::invalid_argument);
  bad = config;
  bad.candidates = {};
  EXPECT_THROW(SessionManager(bad, 1e6), std::invalid_argument);
  bad = config;
  bad.v = -1.0;  // the controller's V >= 0 contract, enforced at the door
  EXPECT_THROW(SessionManager(bad, 1e6), std::invalid_argument);
  bad = config;
  bad.candidates = {5, 4};  // must be strictly ascending
  EXPECT_THROW(SessionManager(bad, 1e6), std::invalid_argument);
  bad = config;
  bad.candidates = {42};
  SessionManager out_of_range(bad, 1e6);
  SessionSpec ok;
  ok.cache = &shared_cache();
  EXPECT_THROW(out_of_range.submit(ok), std::invalid_argument);
}

TEST(SessionManagerTest, LateSubmitArrivesAtSubmissionSlot) {
  ServingConfig config = small_config();
  ConstantChannel channel(1e6);
  SessionManager manager(config, channel.mean_capacity_bytes());
  for (int t = 0; t < 10; ++t) manager.step(channel.next_capacity_bytes());

  // Declared arrival is in the past: the session arrives now, and the
  // reported window matches the trace exactly.
  SessionSpec spec;
  spec.cache = &shared_cache();
  spec.arrival_slot = 0;
  const std::size_t id = manager.submit(spec);
  for (int t = 0; t < 20; ++t) manager.step(channel.next_capacity_bytes());

  const ServingResult result = manager.finish();
  EXPECT_EQ(result.sessions[id].arrival_slot, 10U);
  EXPECT_EQ(result.sessions[id].departure_slot, 30U);
  EXPECT_EQ(result.sessions[id].trace.size(), 20U);
}

TEST(SessionManagerTest, NeverArrivedSessionIsNeitherAdmittedNorRejected) {
  ServingConfig config = small_config();
  config.steps = 20;
  ConstantChannel channel(1e9);
  SessionSpec active;
  active.cache = &shared_cache();
  SessionSpec never;
  never.cache = &shared_cache();
  never.arrival_slot = 500;  // beyond the horizon

  const ServingResult result =
      run_serving_scenario(config, {active, never}, channel);
  // Admission never saw the future session, and the fleet counters agree.
  EXPECT_EQ(result.admission.attempts, 1U);
  EXPECT_EQ(result.admission.rejected, 0U);
  EXPECT_EQ(result.fleet.sessions_submitted, 2U);
  EXPECT_EQ(result.fleet.sessions_admitted, 1U);
  EXPECT_EQ(result.fleet.sessions_rejected, 0U);
}

TEST(SessionManagerTest, CapacityUsedEqualsBytesActuallyDrained) {
  // Queues serve only pre-existing backlog (Lindley: serve, then admit), so
  // the link must be charged min(Q(t), share) per session — the old
  // min(share, backlog + arrivals) counted undrainable same-slot arrivals
  // as used capacity and over-reported utilization.
  ServingConfig config = small_config();
  config.steps = 40;
  ConstantChannel channel(1e9);  // never the bottleneck
  std::vector<SessionSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].cache = &shared_cache();
    specs[i].seed = i;
  }
  const ServingResult result = run_serving_scenario(config, specs, channel);

  double drained = 0.0;       // what the queues actually served
  double old_accounting = 0.0;  // what the old code charged the link
  for (const SessionOutcome& s : result.sessions) {
    for (const StepRecord& r : s.trace.steps()) {
      drained += std::min(r.backlog_begin, r.service);
      old_accounting += std::min(r.service, r.backlog_begin + r.arrivals);
    }
  }
  EXPECT_DOUBLE_EQ(result.fleet.capacity_used, drained);
  // The over-report was real: with arrivals every slot the old accounting
  // strictly exceeds the drained bytes.
  EXPECT_GT(old_accounting, drained);
  EXPECT_LE(result.fleet.capacity_used, result.fleet.capacity_offered);
}

TEST(SessionManagerTest, ShortSessionGetsPartialSummary) {
  // A 3-slot session used to vanish from fleet quality aggregates and print
  // a "-" row; now it carries a partial summary with a "too-short" verdict.
  ServingConfig config = small_config();
  config.steps = 30;
  ConstantChannel channel(1e9);
  SessionSpec brief;
  brief.cache = &shared_cache();
  brief.arrival_slot = 0;
  brief.departure_slot = 3;
  SessionSpec full;
  full.cache = &shared_cache();
  const ServingResult result =
      run_serving_scenario(config, {brief, full}, channel);

  const SessionOutcome& short_session = result.sessions[0];
  ASSERT_TRUE(short_session.admitted);
  ASSERT_EQ(short_session.trace.size(), 3U);
  ASSERT_TRUE(short_session.has_summary);
  EXPECT_TRUE(short_session.summary.partial);
  EXPECT_GT(short_session.summary.time_average_quality, 0.0);
  EXPECT_GE(short_session.summary.mean_depth, config.candidates.front());
  EXPECT_LE(short_session.summary.mean_depth, config.candidates.back());

  // Both sessions now count toward the fleet aggregates.
  EXPECT_EQ(result.fleet.partial_summary_sessions, 1U);
  EXPECT_GT(result.fleet.mean_quality, 0.0);
  EXPECT_GT(result.fleet.quality_fairness, 0.0);

  // The report row carries the means and the "too-short" verdict.
  EXPECT_EQ(std::get<std::string>(result.session_table.at(0, 8)),
            "too-short");
  EXPECT_TRUE(
      std::holds_alternative<double>(result.session_table.at(0, 5)));
  // The full-horizon session keeps a real verdict.
  EXPECT_NE(std::get<std::string>(result.session_table.at(1, 8)), "-");
  EXPECT_NE(std::get<std::string>(result.session_table.at(1, 8)),
            "too-short");
}

TEST(SessionManagerTest, OutOfOrderSubmissionsAdmitInArrivalOrder) {
  // The pending list admits by (arrival slot, id) regardless of submission
  // order — the latest-arriving session was submitted first, and the link
  // only fits two, so it is the one refused.
  ServingConfig config = small_config();
  const double load = cheapest_load(config.candidates);
  ConstantChannel channel(2.5 * load);
  SessionManager manager(config, channel.mean_capacity_bytes());

  SessionSpec spec;
  spec.cache = &shared_cache();
  spec.arrival_slot = 30;
  const std::size_t last = manager.submit(spec);
  spec.arrival_slot = 20;
  const std::size_t middle = manager.submit(spec);
  spec.arrival_slot = 10;
  const std::size_t first = manager.submit(spec);

  for (std::size_t t = 0; t < config.steps; ++t) {
    manager.step(channel.next_capacity_bytes());
  }
  const ServingResult result = manager.finish();
  EXPECT_TRUE(result.sessions[first].admitted);
  EXPECT_TRUE(result.sessions[middle].admitted);
  EXPECT_FALSE(result.sessions[last].admitted);
  EXPECT_EQ(result.sessions[last].arrival_slot, 30U);
  EXPECT_EQ(result.admission.attempts, 3U);
}

// -------------------------------------------------------- Determinism ----

std::vector<SessionSpec> churn_specs(std::size_t n) {
  std::vector<SessionSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].cache = &shared_cache();
    specs[i].arrival_slot = 5 * i;
    specs[i].departure_slot = (i % 3 == 0) ? 5 * i + 70 : kNeverDeparts;
    specs[i].weight = (i % 2 == 0) ? 1.0 : 2.0;
    specs[i].seed = 1'000 + i;
  }
  return specs;
}

TEST(SessionManagerTest, ParallelExecutionIsBitIdenticalToSerial) {
  ServingConfig config = small_config();
  config.steps = 150;
  config.policy = SchedulerPolicy::kProportionalFair;
  const auto specs = churn_specs(9);
  const double capacity = 9.0 * shared_cache().workload(0).bytes(4);

  config.threads = 1;
  ConstantChannel ch_serial(capacity);
  const ServingResult serial = run_serving_scenario(config, specs, ch_serial);
  config.threads = 4;
  ConstantChannel ch_parallel(capacity);
  const ServingResult parallel =
      run_serving_scenario(config, specs, ch_parallel);

  ASSERT_EQ(serial.sessions.size(), parallel.sessions.size());
  for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
    const Trace& a = serial.sessions[i].trace;
    const Trace& b = parallel.sessions[i].trace;
    ASSERT_EQ(a.size(), b.size()) << "session " << i;
    for (std::size_t t = 0; t < a.size(); ++t) {
      // Bit-exact equality, not approximate: the decide phase touches only
      // per-session state, so thread count must not change a single bit.
      EXPECT_EQ(a.at(t).depth, b.at(t).depth);
      EXPECT_EQ(a.at(t).arrivals, b.at(t).arrivals);
      EXPECT_EQ(a.at(t).service, b.at(t).service);
      EXPECT_EQ(a.at(t).backlog_begin, b.at(t).backlog_begin);
      EXPECT_EQ(a.at(t).backlog_end, b.at(t).backlog_end);
      EXPECT_EQ(a.at(t).quality, b.at(t).quality);
    }
  }
  EXPECT_EQ(serial.fleet.quality_fairness, parallel.fleet.quality_fairness);
  EXPECT_EQ(serial.fleet.total_time_average_backlog,
            parallel.fleet.total_time_average_backlog);
}

TEST(ReplicationTest, ParallelReplicateMatchesSerialExactly) {
  const auto factory = [](std::uint64_t seed) {
    StreamingConfig config;
    config.steps = 64;
    config.candidates = {3, 4, 5, 6};
    LyapunovDepthController controller(calibrate_streaming_v(
        shared_cache(), config.candidates,
        3.0 * shared_cache().workload(0).bytes(4)));
    GilbertElliottChannel channel(shared_cache().workload(0).bytes(4) * 1.3,
                                  0.4, 0.1, 0.3, Rng(seed));
    return run_streaming_session(config, shared_cache(), controller, channel);
  };

  const ReplicationSummary serial = replicate(10, factory, 1);
  const ReplicationSummary parallel = replicate(10, factory, 4);
  EXPECT_EQ(serial.replicates, parallel.replicates);
  EXPECT_EQ(serial.quality.mean, parallel.quality.mean);
  EXPECT_EQ(serial.quality.ci_half_width, parallel.quality.ci_half_width);
  EXPECT_EQ(serial.backlog.mean, parallel.backlog.mean);
  EXPECT_EQ(serial.backlog.min, parallel.backlog.min);
  EXPECT_EQ(serial.backlog.max, parallel.backlog.max);
  EXPECT_EQ(serial.mean_depth.mean, parallel.mean_depth.mean);
  EXPECT_EQ(serial.divergent_count, parallel.divergent_count);
}

TEST(SessionManagerTest, PfEwmaWindowValidationAndEffect) {
  ServingConfig config = small_config();
  config.policy = SchedulerPolicy::kProportionalFair;
  config.pf_ewma_window = -1.0;
  EXPECT_THROW(SessionManager(config, 1e6), std::invalid_argument);
  config.pf_ewma_window = 0.5;  // alpha would exceed 1
  EXPECT_THROW(SessionManager(config, 1e6), std::invalid_argument);

  // The knob changes real allocations: under contention, true PF serves the
  // fleet differently from the instantaneous-demand split.
  const auto run_with_window = [&](double window) {
    ServingConfig c = small_config();
    c.steps = 200;
    c.policy = SchedulerPolicy::kProportionalFair;
    c.pf_ewma_window = window;
    std::vector<SessionSpec> specs(3);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].cache = &shared_cache();
      specs[i].seed = i;
      specs[i].weight = i == 0 ? 2.0 : 1.0;
    }
    // Scarce link: queues stay backlogged, so the scheduler's choices bite.
    ConstantChannel channel(2.0 * shared_cache().workload(0).bytes(3));
    return run_serving_scenario(c, specs, channel);
  };
  const ServingResult legacy = run_with_window(0.0);
  const ServingResult true_pf = run_with_window(32.0);
  ASSERT_EQ(legacy.sessions.size(), true_pf.sessions.size());
  bool any_service_differs = false;
  for (std::size_t i = 0; i < legacy.sessions.size(); ++i) {
    const Trace& a = legacy.sessions[i].trace;
    const Trace& b = true_pf.sessions[i].trace;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
      if (a.at(t).service != b.at(t).service) any_service_differs = true;
    }
  }
  EXPECT_TRUE(any_service_differs);
  // Same capacity offered either way — the knob moves bytes between
  // sessions, it does not mint or lose any.
  EXPECT_EQ(legacy.fleet.capacity_offered, true_pf.fleet.capacity_offered);
}

// ------------------------------------------------- Serving end-to-end ----

TEST(ServingScenarioTest, EventLoopWrapperMatchesHandRolledFixedHorizonLoop) {
  // run_serving_scenario is now a thin wrapper over the event-driven
  // EventLoop (dense mode + stop event). It must reproduce the pre-driver
  // hand-rolled fixed-horizon loop bit for bit — same submit order, one step
  // per slot, same capacity draws.
  ServingConfig config = small_config();
  config.steps = 150;
  config.policy = SchedulerPolicy::kProportionalFair;
  const auto specs = churn_specs(9);
  const double capacity = 6.0 * shared_cache().workload(0).bytes(4);

  // The reference: the loop run_serving_scenario used to be.
  GilbertElliottChannel hand_channel(capacity, 0.4, 0.1, 0.3, Rng(23));
  SessionManager manager(config, hand_channel.mean_capacity_bytes());
  for (const SessionSpec& spec : specs) manager.submit(spec);
  for (std::size_t t = 0; t < config.steps; ++t) {
    manager.step(hand_channel.next_capacity_bytes());
  }
  const ServingResult hand = manager.finish();

  GilbertElliottChannel loop_channel(capacity, 0.4, 0.1, 0.3, Rng(23));
  const ServingResult looped =
      run_serving_scenario(config, specs, loop_channel);

  ASSERT_EQ(hand.sessions.size(), looped.sessions.size());
  for (std::size_t i = 0; i < hand.sessions.size(); ++i) {
    const SessionOutcome& a = hand.sessions[i];
    const SessionOutcome& b = looped.sessions[i];
    EXPECT_EQ(a.admitted, b.admitted);
    EXPECT_EQ(a.arrival_slot, b.arrival_slot);
    EXPECT_EQ(a.departure_slot, b.departure_slot);
    ASSERT_EQ(a.trace.size(), b.trace.size()) << "session " << i;
    for (std::size_t t = 0; t < a.trace.size(); ++t) {
      EXPECT_EQ(a.trace.at(t).depth, b.trace.at(t).depth);
      EXPECT_EQ(a.trace.at(t).arrivals, b.trace.at(t).arrivals);
      EXPECT_EQ(a.trace.at(t).service, b.trace.at(t).service);
      EXPECT_EQ(a.trace.at(t).backlog_begin, b.trace.at(t).backlog_begin);
      EXPECT_EQ(a.trace.at(t).backlog_end, b.trace.at(t).backlog_end);
      EXPECT_EQ(a.trace.at(t).quality, b.trace.at(t).quality);
    }
  }
  EXPECT_EQ(hand.admission.attempts, looped.admission.attempts);
  EXPECT_EQ(hand.admission.accepted, looped.admission.accepted);
  EXPECT_EQ(hand.admission.rejected, looped.admission.rejected);
  EXPECT_EQ(hand.fleet.capacity_offered, looped.fleet.capacity_offered);
  EXPECT_EQ(hand.fleet.capacity_used, looped.fleet.capacity_used);
  EXPECT_EQ(hand.fleet.quality_fairness, looped.fleet.quality_fairness);
  EXPECT_EQ(hand.fleet.total_time_average_backlog,
            looped.fleet.total_time_average_backlog);
  EXPECT_EQ(hand.fleet.peak_concurrency, looped.fleet.peak_concurrency);
}

// -------------------------------------------------------- Session store ----

const FrameStatsCache& alt_cache() {
  // Different subject than shared_cache() -> different workload/quality
  // tables, so a session deciding on the wrong table decides differently.
  static const FrameStatsCache cache(*open_test_subject(72), 8, 8);
  return cache;
}

TEST(SessionStoreTest, ValidatePassesThroughLifecycle) {
  const ServingConfig config = small_config();
  SessionStore store(config.candidates, config.v);
  EXPECT_TRUE(store.validate().ok());

  SessionSpec spec;
  spec.cache = &shared_cache();
  for (std::size_t id = 0; id < 6; ++id) {
    spec.departure_slot = (id % 2 == 0) ? 4 : kNeverDeparts;
    spec.weight = (id % 3 == 0) ? 2.0 : 1.0;
    ServingSession& s = store.create(id, spec);
    s.phase = SessionPhase::kActive;
    store.activate(s, 0);
  }
  EXPECT_TRUE(store.validate().ok()) << store.validate().to_string();

  for (std::size_t t = 0; t < 8; ++t) {
    store.retire_departed(t, [](ServingSession& s) {
      s.phase = SessionPhase::kClosed;
    });
    store.decide_all();
    for (std::size_t i = 0; i < store.active_count(); ++i) {
      store.drain(i, t, 500.0, 0.25);
    }
    const Status ok = store.validate();
    EXPECT_TRUE(ok.ok()) << "slot " << t << ": " << ok.to_string();
  }
  EXPECT_EQ(store.active_count(), 3U);  // the even ids departed at slot 4
}

TEST(SessionStoreTest, ValidateDetectsSlabMirrorDivergence) {
  const ServingConfig config = small_config();
  SessionStore store(config.candidates, config.v);
  SessionSpec spec;
  spec.cache = &shared_cache();
  ServingSession& s = store.create(0, spec);
  s.phase = SessionPhase::kActive;
  store.activate(s, 0);
  ASSERT_TRUE(store.validate().ok());

  // A spec mutated behind the store's back must be caught: the weight and
  // departure mirrors are bit-compared against the cold slab.
  s.spec.weight = 3.0;
  EXPECT_EQ(store.validate().code(), StatusCode::kFailedPrecondition);
  s.spec.weight = 1.0;
  ASSERT_TRUE(store.validate().ok());

  s.spec.departure_slot = 7;  // without mirror_departure()
  EXPECT_EQ(store.validate().code(), StatusCode::kFailedPrecondition);
  store.mirror_departure(s);  // the sanctioned mutation path repairs it
  EXPECT_TRUE(store.validate().ok());

  s.phase = SessionPhase::kClosed;  // active slot pointing at a closed record
  EXPECT_EQ(store.validate().code(), StatusCode::kFailedPrecondition);
  s.phase = SessionPhase::kActive;
  EXPECT_TRUE(store.validate().ok());
}

TEST(SessionStoreTest, ReinterningTablesMidRunKeepsDecisionsExact) {
  // Regression for the decide-memo key scheme: memo entries are keyed by
  // (interned table id, row offset), never by the row's address. The
  // adversarial shape is sessions on *different* tables whose (row offset,
  // backlog bits) collide exactly — fresh activations all start at row 0
  // with backlog 0 — plus a table retired from use and re-interned mid-run.
  // A key scheme that conflates tables would group them together and decide
  // some sessions on the wrong table; every decision is therefore checked
  // bit-for-bit against a twin store driven only by the scalar kernel.
  const ServingConfig config = small_config();
  SessionStore store(config.candidates, config.v);   // decide_all (memoized)
  SessionStore oracle(config.candidates, config.v);  // decide(i) (scalar)

  std::size_t next_id = 0;
  const auto spawn = [&](const FrameStatsCache& cache, std::size_t count,
                         std::size_t departure) {
    SessionSpec spec;
    spec.cache = &cache;
    spec.departure_slot = departure;
    for (std::size_t k = 0; k < count; ++k, ++next_id) {
      for (SessionStore* st : {&store, &oracle}) {
        ServingSession& s = st->create(next_id, spec);
        s.phase = SessionPhase::kActive;
        st->activate(s, 0);
      }
    }
  };
  const auto step = [&](std::size_t t) {
    for (SessionStore* st : {&store, &oracle}) {
      st->retire_departed(
          t, [](ServingSession& s) { s.phase = SessionPhase::kClosed; });
    }
    store.decide_all();
    for (std::size_t i = 0; i < oracle.active_count(); ++i) oracle.decide(i);
    ASSERT_EQ(store.active_count(), oracle.active_count());
    for (std::size_t i = 0; i < store.active_count(); ++i) {
      // Identical per-session share so backlogs stay bit-identical too.
      store.drain(i, t, 700.0, 0.0);
      oracle.drain(i, t, 700.0, 0.0);
    }
    const Status ok = store.validate();
    ASSERT_TRUE(ok.ok()) << "slot " << t << ": " << ok.to_string();
  };

  spawn(shared_cache(), 3, 4);            // cohort A: table 0, departs at 4
  spawn(alt_cache(), 3, kNeverDeparts);   // cohort B: table 1, same row/backlog
  for (std::size_t t = 0; t < 4; ++t) step(t);
  // Cohort A is gone; re-intern its table mid-run (must find table id 0, not
  // mint a duplicate) alongside more sessions on table 1.
  spawn(shared_cache(), 2, kNeverDeparts);
  spawn(alt_cache(), 2, kNeverDeparts);
  for (std::size_t t = 4; t < 12; ++t) step(t);

  // Bit-for-bit comparison of every surviving session's full trace.
  ASSERT_EQ(store.session_count(), oracle.session_count());
  for (std::size_t pos = 0; pos < store.session_count(); ++pos) {
    const Trace& got = store.session(pos).trace;
    const Trace& want = oracle.session(pos).trace;
    ASSERT_EQ(got.size(), want.size()) << "session " << pos;
    for (std::size_t t = 0; t < got.size(); ++t) {
      const StepRecord& g = got.at(t);
      const StepRecord& w = want.at(t);
      EXPECT_EQ(g.depth, w.depth) << "session " << pos << " slot " << t;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(g.arrivals),
                std::bit_cast<std::uint64_t>(w.arrivals));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(g.quality),
                std::bit_cast<std::uint64_t>(w.quality));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(g.backlog_end),
                std::bit_cast<std::uint64_t>(w.backlog_end));
    }
  }
  // The engine rebuilt across the lifecycle edges above; now exercise the
  // reuse path too: with no drain or churn since the previous call, the
  // second decide_all must reuse the grouping (and still match the oracle).
  EXPECT_GT(store.decide_group_rebuilds(), 0U);
  store.decide_all();  // rebuilds: the last drain dirtied the backlogs
  store.decide_all();  // provably unchanged since -> reuse
  EXPECT_TRUE(store.last_decide_reused_groups());
  EXPECT_GT(store.decide_group_reuses(), 0U);
}

TEST(ServingScenarioTest, AdmissionKeepsFleetStable) {
  // Twice as many sessions as the link's stability region fits; admission
  // must turn the overflow away and every admitted session must stay
  // non-divergent.
  ServingConfig config = small_config();
  config.steps = 400;
  const double load = cheapest_load(config.candidates);
  ConstantChannel channel(4.2 * load);
  std::vector<SessionSpec> specs(8);
  for (auto& spec : specs) spec.cache = &shared_cache();

  const ServingResult result = run_serving_scenario(config, specs, channel);
  EXPECT_EQ(result.admission.accepted, 4U);
  EXPECT_EQ(result.admission.rejected, 4U);
  EXPECT_EQ(result.fleet.divergent_sessions, 0U);
  EXPECT_GT(result.fleet.quality_fairness, 0.99);
  EXPECT_GT(result.fleet.utilization(), 0.5);
}

}  // namespace
}  // namespace arvis
