// Counting global operator new: a test binary includes this once and every
// allocation in the process routes through it, so steady-state tests can
// assert the delta over a measured window is exactly zero (the zero-hot-path
// -allocation invariant, also enforced statically by tools/lint_invariants.py).
//
// The replacement operators route to std::malloc/std::free — the standard
// replacement pattern, and ASan-compatible (ASan intercepts malloc, so probe
// binaries stay fully poisoned/leak-checked). GCC's -Wmismatched-new-delete
// cannot see that the replaced operator new is malloc-backed and flags the
// free() at inlined delete sites as a mismatch; that diagnostic is a known
// false positive for user-replaced global operators and is suppressed for
// exactly these four definitions.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace arvis_test {

/// Total operator new / new[] calls in this process.
inline std::atomic<std::size_t> g_allocations{0};

inline std::size_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace arvis_test

void* operator new(std::size_t size) {
  arvis_test::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  arvis_test::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
