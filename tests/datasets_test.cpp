// Tests for the synthetic 8iVFB-substitute dataset: body model geometry,
// frame synthesis, sequence determinism, and the subject catalog.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "datasets/body_model.hpp"
#include "datasets/catalog.hpp"
#include "datasets/frame_source.hpp"
#include "datasets/synthetic_body.hpp"
#include "octree/octree.hpp"
#include "pointcloud/ply_io.hpp"

namespace arvis {
namespace {

// ------------------------------------------------------------ BodyModel ----

TEST(BodyPrimitiveTest, SurfaceAreaPositive) {
  BodyPrimitive capsule{{0, 0, 0}, {0, 1, 0}, 0.1F, 0, false, {}};
  EXPECT_GT(capsule.surface_area(), 0.0F);
  BodyPrimitive ellipsoid{{0, 0, 0}, {0, 0.3F, 0}, 0.1F, 0, true, {}};
  EXPECT_GT(ellipsoid.surface_area(), 0.0F);
}

TEST(BodyPrimitiveTest, CapsuleSamplesNearSurface) {
  const BodyPrimitive capsule{{0, 0, 0}, {0, 2, 0}, 0.25F, 0, false, {}};
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Vec3f p = capsule.sample_surface(rng);
    // Distance from the segment must be ~radius (or on the caps).
    const float t = std::clamp(p.y, 0.0F, 2.0F);
    const float d = distance(p, {0, t, 0});
    EXPECT_NEAR(d, 0.25F, 1e-4F);
  }
}

TEST(BodyPrimitiveTest, SphereAreaMatchesAnalytic) {
  // Degenerate ellipsoid with len ~ 0 is a sphere of radius r.
  const BodyPrimitive sphere{{0, 0, 0}, {0, 1e-6F, 0}, 0.5F, 0, true, {}};
  const float analytic = 4.0F * 3.14159265F * 0.25F;
  EXPECT_NEAR(sphere.surface_area(), analytic, analytic * 0.02F);
}

TEST(BodyModelTest, BuildBodyProducesAllParts) {
  const auto prims = build_body(BodyShape{}, Pose{});
  // pelvis + torso + head + neck + 2*(thigh+shin+foot) + 2*(upper+forearm).
  EXPECT_EQ(prims.size(), 14U);
}

TEST(BodyModelTest, BodySpansExpectedHeight) {
  BodyShape shape;
  shape.height = 1.8F;
  const auto prims = build_body(shape, Pose{});
  float max_y = 0.0F;
  float min_y = 10.0F;
  for (const auto& prim : prims) {
    max_y = std::max({max_y, prim.a.y + prim.radius, prim.b.y + prim.radius});
    min_y = std::min({min_y, prim.a.y - prim.radius, prim.b.y - prim.radius});
  }
  EXPECT_NEAR(max_y, 1.8F, 0.25F);  // head top ≈ height
  EXPECT_LT(min_y, 0.1F);           // feet near the ground
}

TEST(BodyModelTest, WalkPoseLegsCounterSwing) {
  const Pose pose = walk_pose(0.25F);  // peak of the cycle
  EXPECT_GT(std::abs(pose.left_hip_swing), 0.1F);
  EXPECT_NEAR(pose.left_hip_swing, -pose.right_hip_swing, 1e-6F);
  // Arms oppose their legs.
  EXPECT_LT(pose.left_shoulder_swing * pose.left_hip_swing, 0.0F);
}

TEST(BodyModelTest, WalkPoseCyclic) {
  const Pose a = walk_pose(0.0F);
  const Pose b = walk_pose(1.0F);  // phase wraps
  EXPECT_NEAR(a.left_hip_swing, b.left_hip_swing, 1e-5F);
  EXPECT_NEAR(a.bob, b.bob, 1e-5F);
}

// -------------------------------------------------------- SyntheticBody ----

TEST(SyntheticBodyTest, ProducesRequestedScale) {
  SyntheticBodyParams params;
  params.sample_count = 30'000;
  params.voxel_bits = 0;  // raw samples
  Rng rng(2);
  const PointCloud cloud = synthesize_body(params, Pose{}, rng);
  EXPECT_EQ(cloud.size(), 30'000U);
  EXPECT_TRUE(cloud.has_colors());
}

TEST(SyntheticBodyTest, VoxelizationDeduplicates) {
  SyntheticBodyParams params;
  params.sample_count = 50'000;
  params.voxel_bits = 7;
  Rng rng(3);
  const PointCloud cloud = synthesize_body(params, Pose{}, rng);
  EXPECT_LT(cloud.size(), 50'000U);  // many samples share 7-bit voxels
  EXPECT_GT(cloud.size(), 1'000U);
}

TEST(SyntheticBodyTest, DeterministicGivenSeed) {
  SyntheticBodyParams params;
  params.sample_count = 5'000;
  Rng rng_a(7), rng_b(7);
  const PointCloud a = synthesize_body(params, walk_pose(0.3F), rng_a);
  const PointCloud b = synthesize_body(params, walk_pose(0.3F), rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.position(i), b.position(i));
    EXPECT_EQ(a.color(i), b.color(i));
  }
}

TEST(SyntheticBodyTest, BodyShapedExtent) {
  SyntheticBodyParams params;
  params.sample_count = 20'000;
  params.voxel_bits = 0;
  params.noise_stddev = 0.0F;
  Rng rng(4);
  const PointCloud cloud = synthesize_body(params, Pose{}, rng);
  const Aabb bounds = cloud.bounds();
  // Standing body: tall in y, narrower in x/z.
  EXPECT_GT(bounds.extent().y, 1.4F);
  EXPECT_LT(bounds.extent().y, 2.1F);
  EXPECT_LT(bounds.extent().x, bounds.extent().y);
  EXPECT_LT(bounds.extent().z, bounds.extent().y);
}

TEST(SyntheticBodyTest, OctreeOccupancyGrowthMatches8ivfbShape) {
  // The property the controller depends on: occupancy grows ~4x/level in the
  // mid depths, then saturates — same shape as the real dataset.
  SyntheticBodyParams params;
  params.sample_count = 150'000;
  params.voxel_bits = 0;
  Rng rng(5);
  const PointCloud cloud = synthesize_body(params, Pose{}, rng);
  const Octree tree(cloud, 9);
  const auto profile = tree.occupancy_profile();
  for (int d = 3; d <= 5; ++d) {
    const double growth =
        static_cast<double>(profile[static_cast<std::size_t>(d + 1)]) /
        static_cast<double>(profile[static_cast<std::size_t>(d)]);
    EXPECT_GT(growth, 2.0) << "depth " << d;
    EXPECT_LT(growth, 5.5) << "depth " << d;  // surface-like, well under 8x
  }
  // Saturation: the last level grows much slower than mid levels.
  const double tail_growth = static_cast<double>(profile[9]) /
                             static_cast<double>(profile[8]);
  EXPECT_LT(tail_growth, 2.5);
}

// ---------------------------------------------------------- FrameSource ----

TEST(SyntheticSequenceTest, RandomAccessDeterminism) {
  const auto source = open_test_subject(11);
  const PointCloud f3_first = source->frame(3);
  const PointCloud f0 = source->frame(0);
  const PointCloud f3_again = source->frame(3);
  ASSERT_EQ(f3_first.size(), f3_again.size());
  for (std::size_t i = 0; i < f3_first.size(); ++i) {
    EXPECT_EQ(f3_first.position(i), f3_again.position(i));
  }
  // Different frames differ (animation moves the limbs).
  EXPECT_NE(f0.size(), 0U);
  bool same = f0.size() == f3_first.size();
  if (same) {
    same = false;
    for (std::size_t i = 0; i < f0.size(); ++i) {
      if (!(f0.position(i) == f3_first.position(i))) break;
      if (i + 1 == f0.size()) same = true;
    }
  }
  EXPECT_FALSE(same);
}

TEST(SyntheticSequenceTest, FramesLoop) {
  const auto source = open_test_subject(12);
  const std::size_t n = source->frame_count();
  const PointCloud first = source->frame(0);
  const PointCloud wrapped = source->frame(n);
  ASSERT_EQ(first.size(), wrapped.size());
  EXPECT_EQ(first.position(0), wrapped.position(0));
}

TEST(SyntheticSequenceTest, ConstructionValidation) {
  SyntheticBodyParams params;
  EXPECT_THROW(SyntheticSequence("x", params, 0, 30, 1), std::invalid_argument);
  EXPECT_THROW(SyntheticSequence("x", params, 10, 0, 1), std::invalid_argument);
}

TEST(MemorySequenceTest, WrapsAndValidates) {
  EXPECT_THROW(MemorySequence("m", {}), std::invalid_argument);
  std::vector<PointCloud> frames;
  PointCloud f;
  f.add_point({1, 2, 3});
  frames.push_back(f);
  const MemorySequence seq("m", frames);
  EXPECT_EQ(seq.frame_count(), 1U);
  EXPECT_EQ(seq.frame(5).position(0), (Vec3f{1, 2, 3}));
}

TEST(MaterializeTest, CapturesFrames) {
  const auto source = open_test_subject(13);
  const MemorySequence seq = materialize(*source, 4);
  EXPECT_EQ(seq.frame_count(), 4U);
  EXPECT_EQ(seq.frame(2).size(), source->frame(2).size());
}

TEST(PlySequenceTest, LoadsDirectoryOfFrames) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "arvis_ply_seq";
  fs::create_directories(dir);
  const auto source = open_test_subject(14);
  // Write three frames; include a non-ply file that must be ignored.
  for (int i = 0; i < 3; ++i) {
    const auto path = dir / ("frame_000" + std::to_string(i) + ".ply");
    ASSERT_TRUE(write_ply_file(path.string(), source->frame(static_cast<std::size_t>(i)))
                    .ok());
  }
  std::ofstream(dir / "README.txt") << "not a ply";

  auto seq = PlySequence::open(dir.string());
  ASSERT_TRUE(seq.ok()) << seq.status().to_string();
  EXPECT_EQ(seq->frame_count(), 3U);
  EXPECT_EQ(seq->frame(1).size(), source->frame(1).size());
  // Repeated access (cache path) returns identical data.
  EXPECT_EQ(seq->frame(1).position(0), seq->frame(1).position(0));
  fs::remove_all(dir);
}

TEST(PlySequenceTest, MissingDirectoryRejected) {
  EXPECT_FALSE(PlySequence::open("/no/such/dir").ok());
}

TEST(PlySequenceTest, EmptyDirectoryRejected) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(testing::TempDir()) / "arvis_ply_empty";
  fs::create_directories(dir);
  EXPECT_FALSE(PlySequence::open(dir.string()).ok());
  fs::remove_all(dir);
}

// -------------------------------------------------------------- Catalog ----

TEST(CatalogTest, FourSubjectsMirror8ivfb) {
  const auto subjects = catalog_subjects();
  ASSERT_EQ(subjects.size(), 4U);
  std::vector<std::string> names;
  for (const auto& s : subjects) {
    names.push_back(s.name);
    EXPECT_EQ(s.frames, 300U);  // 8iVFB sequence length
    EXPECT_GE(s.sample_count, 700'000U);
    EXPECT_LE(s.sample_count, 1'000'000U);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"longdress", "loot",
                                             "redandblack", "soldier"}));
}

TEST(CatalogTest, OpenSubjectScalesSampleCount) {
  auto source = open_subject("loot", 1, 0.01);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->frame_count(), 300U);
  // At 1% scale the frame is small but non-trivial.
  const PointCloud frame = (*source)->frame(0);
  EXPECT_GT(frame.size(), 500U);
  EXPECT_LT(frame.size(), 20'000U);
}

TEST(CatalogTest, UnknownSubjectRejected) {
  EXPECT_FALSE(open_subject("basketball").ok());
}

TEST(CatalogTest, SubjectsDifferInScale) {
  auto loot = open_subject("loot", 1, 0.02);
  auto soldier = open_subject("soldier", 1, 0.02);
  ASSERT_TRUE(loot.ok());
  ASSERT_TRUE(soldier.ok());
  // soldier samples 1e6 vs loot 7.8e5: frames should differ in size.
  EXPECT_NE((*loot)->frame(0).size(), (*soldier)->frame(0).size());
}

}  // namespace
}  // namespace arvis
