// Tests for the software rasterizer: framebuffer semantics, projection,
// depth testing, and the delay/quality calibration properties it grounds.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <fstream>

#include "common/stats.hpp"
#include "datasets/catalog.hpp"
#include "octree/octree.hpp"
#include "render/rasterizer.hpp"

namespace arvis {
namespace {

TEST(FramebufferTest, ConstructionAndClear) {
  EXPECT_THROW(Framebuffer(0, 10), std::invalid_argument);
  Framebuffer fb(8, 4);
  EXPECT_EQ(fb.width(), 8);
  EXPECT_EQ(fb.height(), 4);
  fb.clear({7, 8, 9});
  EXPECT_EQ(fb.pixel(3, 2), (Color8{7, 8, 9}));
}

TEST(FramebufferTest, DepthTestKeepsNearest) {
  Framebuffer fb(4, 4);
  fb.clear();
  EXPECT_TRUE(fb.try_write(1, 1, 5.0F, {10, 0, 0}));
  EXPECT_FALSE(fb.try_write(1, 1, 9.0F, {0, 10, 0}));  // farther loses
  EXPECT_TRUE(fb.try_write(1, 1, 2.0F, {0, 0, 10}));   // nearer wins
  EXPECT_EQ(fb.pixel(1, 1), (Color8{0, 0, 10}));
}

TEST(FramebufferTest, OutOfBoundsWriteRejected) {
  Framebuffer fb(4, 4);
  fb.clear();
  EXPECT_FALSE(fb.try_write(-1, 0, 1.0F, {}));
  EXPECT_FALSE(fb.try_write(4, 0, 1.0F, {}));
  EXPECT_FALSE(fb.try_write(0, 4, 1.0F, {}));
}

TEST(FramebufferTest, PpmWriteRoundTripHeader) {
  Framebuffer fb(3, 2);
  fb.clear({1, 2, 3});
  const std::string path = testing::TempDir() + "/arvis_render_test.ppm";
  ASSERT_TRUE(fb.write_ppm(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxval, 255);
}

TEST(RenderTest, CenteredPointProjectsToImageCenter) {
  Framebuffer fb(64, 64);
  fb.clear();
  Camera camera;
  camera.eye = {0, 0, 2};
  camera.target = {0, 0, 0};
  PointCloud cloud;
  cloud.add_point({0, 0, 0}, {255, 255, 255});
  const RenderStats stats = render_points(fb, camera, cloud, 1);
  EXPECT_EQ(stats.fragments_written, 1U);
  EXPECT_EQ(fb.pixel(32, 32), (Color8{255, 255, 255}));
}

TEST(RenderTest, PointBehindCameraCulled) {
  Framebuffer fb(32, 32);
  fb.clear();
  Camera camera;
  camera.eye = {0, 0, 2};
  camera.target = {0, 0, 0};
  PointCloud cloud;
  cloud.add_point({0, 0, 5}, {255, 0, 0});  // behind the eye
  const RenderStats stats = render_points(fb, camera, cloud);
  EXPECT_EQ(stats.points_culled, 1U);
  EXPECT_EQ(stats.fragments_written, 0U);
}

TEST(RenderTest, NearerPointOccludesFarther) {
  Framebuffer fb(64, 64);
  fb.clear();
  Camera camera;
  camera.eye = {0, 0, 4};
  camera.target = {0, 0, 0};
  PointCloud cloud;
  cloud.add_point({0, 0, 0}, {255, 0, 0});  // far
  cloud.add_point({0, 0, 2}, {0, 255, 0});  // near, same ray
  render_points(fb, camera, cloud);
  EXPECT_EQ(fb.pixel(32, 32), (Color8{0, 255, 0}));
}

TEST(RenderTest, SplatSizeCoversSquare) {
  Framebuffer fb(64, 64);
  fb.clear();
  Camera camera;
  camera.eye = {0, 0, 2};
  camera.target = {0, 0, 0};
  PointCloud cloud;
  cloud.add_point({0, 0, 0}, {9, 9, 9});
  const RenderStats stats = render_points(fb, camera, cloud, 3);
  EXPECT_EQ(stats.fragments, 9U);
  EXPECT_EQ(stats.fragments_written, 9U);
  EXPECT_EQ(fb.pixel(31, 31), (Color8{9, 9, 9}));
  EXPECT_EQ(fb.pixel(33, 33), (Color8{9, 9, 9}));
}

TEST(ImageMetricsTest, MseAndPsnr) {
  Framebuffer a(8, 8), b(8, 8);
  a.clear({0, 0, 0});
  b.clear({0, 0, 0});
  EXPECT_DOUBLE_EQ(image_mse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(image_psnr_db(a, b)));
  b.clear({10, 10, 10});
  EXPECT_DOUBLE_EQ(image_mse(a, b), 100.0);
  EXPECT_NEAR(image_psnr_db(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0),
              1e-9);
  Framebuffer c(4, 4);
  EXPECT_THROW(image_mse(a, c), std::invalid_argument);
}

TEST(RenderCalibrationTest, ImageQualityImprovesWithOctreeDepth) {
  // The visual claim of the paper's Fig. 1: deeper octree -> sharper image.
  const auto source = open_test_subject(51);
  const Octree tree(source->frame(0), 8);
  Camera camera;
  camera.eye = {0, 0.9F, 2.2F};
  camera.target = {0, 0.9F, 0};

  Framebuffer reference(128, 128);
  reference.clear();
  render_points(reference, camera, tree.extract_lod(8), 1);

  double previous_psnr = 0.0;
  for (int depth : {3, 5, 7}) {
    Framebuffer fb(128, 128);
    fb.clear();
    // Scale splats with cell size so coarse LODs stay hole-free.
    const int splat = std::max(1, 1 << (8 - depth) >> 1);
    render_points(fb, camera, tree.extract_lod(depth), splat);
    const double psnr = image_psnr_db(reference, fb);
    EXPECT_GT(psnr, previous_psnr) << "depth " << depth;
    previous_psnr = psnr;
  }
}

TEST(RenderCalibrationTest, RenderTimeGrowsWithPointCount) {
  // Grounds the affine delay model: time per frame grows with submitted
  // points. Uses wall clock with generous margins (CI-safe: only ordering
  // of 16x workloads is asserted, averaged over repeats).
  const auto source = open_test_subject(52);
  const Octree tree(source->frame(0), 8);
  const PointCloud small = tree.extract_lod(4);
  const PointCloud large = tree.extract_lod(8);
  ASSERT_GT(large.size(), small.size() * 8);

  Framebuffer fb(256, 256);
  Camera camera;
  camera.eye = {0, 0.9F, 2.2F};
  camera.target = {0, 0.9F, 0};

  auto time_render = [&](const PointCloud& cloud) {
    const auto start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 20; ++rep) {
      fb.clear();
      render_points(fb, camera, cloud, 1);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start).count();
  };
  time_render(small);  // warm-up
  EXPECT_GT(time_render(large), time_render(small));
}

}  // namespace
}  // namespace arvis
