// Tests for the ARVIS_DCHECK layer and the arena lifetime checker built on
// it. The death tests prove the checks actually fire in Debug/sanitizer
// builds (stale handle, double activation, out-of-range kernel index); the
// elision tests prove a Release build pays nothing — off-mode macros do not
// even evaluate their operands, which is the property that lets O(n) checks
// sit inside the decide/drain kernels.
#include <gtest/gtest.h>

#include <cstddef>

#include "common/check.hpp"
#include "datasets/catalog.hpp"
#include "net/streaming.hpp"
#include "serving/session_store.hpp"
#include "sim/frame_stats_cache.hpp"

namespace arvis {
namespace {

const FrameStatsCache& check_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

// The helpers (and the probe lambda below) are only referenced by the death
// tests, which compile away with the check layer; [[maybe_unused]] keeps the
// Release -Werror build clean.
[[maybe_unused]] SessionStore make_store() {
  const std::vector<int> candidates{3, 4, 5, 6};
  const double v = calibrate_streaming_v(
      check_cache(), candidates, 4.0 * check_cache().workload(0).bytes(5));
  return SessionStore(candidates, v);
}

[[maybe_unused]] ServingSession& activate_one(SessionStore& store,
                                              std::size_t id) {
  SessionSpec spec;
  spec.cache = &check_cache();
  ServingSession& s = store.create(id, spec);
  s.phase = SessionPhase::kActive;
  store.activate(s, 0);
  return s;
}

TEST(CheckTest, EnabledMatchesBuildMode) {
#ifdef NDEBUG
#ifdef ARVIS_FORCE_DCHECKS
  EXPECT_TRUE(dchecks_enabled());
#else
  EXPECT_FALSE(dchecks_enabled());
#endif
#else
  EXPECT_TRUE(dchecks_enabled());
#endif
  EXPECT_EQ(dchecks_enabled(), ARVIS_DCHECK_IS_ON != 0);
}

TEST(CheckTest, PassingChecksAreSilent) {
  // Whole family, truthy conditions: must be no-ops in every build mode.
  ARVIS_DCHECK(true);
  ARVIS_DCHECK_MSG(1 + 1 == 2, "arithmetic");
  ARVIS_DCHECK_EQ(4, 4);
  ARVIS_DCHECK_NE(4, 5);
  ARVIS_DCHECK_LT(4, 5);
  ARVIS_DCHECK_LE(5, 5);
  ARVIS_DCHECK_GT(5, 4);
  ARVIS_DCHECK_GE(5, 5);
  SUCCEED();
}

TEST(CheckTest, OffModeDoesNotEvaluateOperands) {
  // The contract that makes expensive checks free in Release: when the
  // layer is off, the condition expression is never evaluated. When it is
  // on, a *passing* condition is evaluated exactly once.
  int evaluations = 0;
  [[maybe_unused]] const auto probe = [&]() {
    ++evaluations;
    return true;
  };
  ARVIS_DCHECK(probe());
  ARVIS_DCHECK_MSG(probe(), "msg");
  ARVIS_DCHECK_EQ(probe(), true);
  if (dchecks_enabled()) {
    EXPECT_EQ(evaluations, 3);
  } else {
    EXPECT_EQ(evaluations, 0);
  }
}

#if ARVIS_DCHECK_IS_ON

TEST(CheckDeathTest, FailureReportsExpressionAndAborts) {
  EXPECT_DEATH(ARVIS_DCHECK(2 + 2 == 5), "ARVIS_DCHECK failed: 2 \\+ 2 == 5");
  EXPECT_DEATH(ARVIS_DCHECK_MSG(false, "the message"), "the message");
  EXPECT_DEATH(ARVIS_DCHECK_LT(7, 3), "\\(7\\) < \\(3\\)");
}

TEST(CheckDeathTest, StaleHandleIsCaught) {
  SessionStore store = make_store();
  activate_one(store, 0);
  ServingSession& doomed = activate_one(store, 1);
  const SessionStore::ActiveHandle h = store.active_handle(1);
  EXPECT_EQ(&store.resolve(h), &doomed);  // fresh handle resolves fine

  // Any lifecycle edge bumps the membership generation: the handle is now
  // provably stale (index 1 no longer exists; index 0 compacted).
  doomed.spec.departure_slot = 0;
  store.mirror_departure(doomed);
  store.retire_departed(
      0, [](ServingSession& s) { s.phase = SessionPhase::kClosed; });
  EXPECT_DEATH((void)store.resolve(h), "stale session handle");
  EXPECT_DEATH((void)store.backlog_at(h), "stale session handle");
}

TEST(CheckDeathTest, DoubleActivationIsCaught) {
  SessionStore store = make_store();
  ServingSession& s = activate_one(store, 0);
  EXPECT_DEATH(store.activate(s, 1), "session activated twice");
}

TEST(CheckDeathTest, OutOfRangeKernelIndexIsCaught) {
  SessionStore store = make_store();
  activate_one(store, 0);
  // One active session: index 1 is past the live range. In a Release build
  // this reads whatever the mirror vectors hold; with the layer on it dies
  // on the bounds check before touching data.
  EXPECT_DEATH(store.decide(1), "ARVIS_DCHECK failed");
  EXPECT_DEATH((void)store.active_session(1), "ARVIS_DCHECK failed");
  EXPECT_DEATH((void)store.active_handle(1), "ARVIS_DCHECK failed");
}

TEST(CheckDeathTest, RetiredSlotIsPoisonedNotReadable) {
  SessionStore store = make_store();
  activate_one(store, 0);
  ServingSession& b = activate_one(store, 1);
  b.spec.departure_slot = 0;
  store.mirror_departure(b);
  store.retire_departed(
      0, [](ServingSession& s) { s.phase = SessionPhase::kClosed; });
  ASSERT_EQ(store.active_count(), 1U);
  // Index 1's slot still exists in vector capacity but was poisoned on
  // release: the kernels must refuse it rather than read the stale mirror.
  EXPECT_DEATH(store.decide(1), "ARVIS_DCHECK failed");
  EXPECT_DEATH(store.drain(1, 1, 0.0, 0.0), "ARVIS_DCHECK failed");
}

#endif  // ARVIS_DCHECK_IS_ON

}  // namespace
}  // namespace arvis
