// Tests for the networking substrate: channel models, the byte-domain
// streaming session, and the multi-device edge scenario.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/edge.hpp"
#include "net/streaming.hpp"

namespace arvis {
namespace {

const FrameStatsCache& shared_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

// -------------------------------------------------------------- Channel ----

TEST(ConstantChannelTest, FixedCapacity) {
  ConstantChannel ch(1'500.0);
  EXPECT_DOUBLE_EQ(ch.next_capacity_bytes(), 1'500.0);
  EXPECT_DOUBLE_EQ(ch.mean_capacity_bytes(), 1'500.0);
  EXPECT_THROW(ConstantChannel(-1.0), std::invalid_argument);
}

TEST(GilbertElliottChannelTest, MeanMatchesStationary) {
  // pi_good = 0.8 with p_gb = 0.05, p_bg = 0.2.
  GilbertElliottChannel ch(1'000.0, 0.25, 0.05, 0.2, Rng(1));
  EXPECT_NEAR(ch.mean_capacity_bytes(), 0.8 * 1000.0 + 0.2 * 250.0, 1e-9);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(ch.next_capacity_bytes());
  EXPECT_NEAR(stats.mean(), ch.mean_capacity_bytes(), 10.0);
}

TEST(GilbertElliottChannelTest, EmitsOnlyTwoRates) {
  GilbertElliottChannel ch(800.0, 0.5, 0.3, 0.3, Rng(2));
  for (int i = 0; i < 200; ++i) {
    const double c = ch.next_capacity_bytes();
    EXPECT_TRUE(c == 800.0 || c == 400.0);
  }
  EXPECT_THROW(GilbertElliottChannel(100.0, 1.5, 0.1, 0.1, Rng(1)),
               std::invalid_argument);
}

TEST(TraceChannelTest, CyclesAndValidates) {
  TraceChannel ch({100.0, 300.0});
  EXPECT_DOUBLE_EQ(ch.next_capacity_bytes(), 100.0);
  EXPECT_DOUBLE_EQ(ch.next_capacity_bytes(), 300.0);
  EXPECT_DOUBLE_EQ(ch.next_capacity_bytes(), 100.0);
  EXPECT_DOUBLE_EQ(ch.mean_capacity_bytes(), 200.0);
  EXPECT_THROW(TraceChannel({}), std::invalid_argument);
}

// ------------------------------------------------------------ Streaming ----

TEST(StreamingTest, ArrivalsAreOccupancyBytes) {
  const auto& cache = shared_cache();
  StreamingConfig config;
  config.steps = 32;
  config.candidates = {3, 4, 5, 6};
  LyapunovDepthController controller(1e9);  // always max depth
  ConstantChannel channel(1e9);
  const Trace trace = run_streaming_session(config, cache, controller, channel);
  ASSERT_EQ(trace.size(), 32U);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(trace.at(t).depth, 6);
    EXPECT_DOUBLE_EQ(trace.at(t).arrivals, cache.workload(t).bytes(6));
  }
}

TEST(StreamingTest, LyapunovStabilizesConstrainedLink) {
  const auto& cache = shared_cache();
  StreamingConfig config;
  config.steps = 2'000;
  config.candidates = {3, 4, 5, 6, 7, 8};
  // Link fits depth ~5 on average.
  const double capacity = cache.workload(0).bytes(5) * 1.2;

  LyapunovDepthController proposed(
      calibrate_streaming_v(cache, config.candidates, 5.0 * capacity));
  ConstantChannel ch1(capacity);
  const Trace stable = run_streaming_session(config, cache, proposed, ch1);
  auto max_ctrl = FixedDepthController::max_depth();
  ConstantChannel ch2(capacity);
  const Trace divergent = run_streaming_session(config, cache, max_ctrl, ch2);

  EXPECT_NE(stable.summarize().stability.verdict, StabilityVerdict::kDivergent);
  EXPECT_EQ(divergent.summarize().stability.verdict,
            StabilityVerdict::kDivergent);
  // The calibrated controller is not hiding at the minimum depth: it uses
  // the link (mean depth strictly above the floor).
  EXPECT_GT(stable.summarize().mean_depth,
            static_cast<double>(config.candidates.front()) + 0.2);
}

TEST(StreamingTest, CalibrateStreamingV) {
  const auto& cache = shared_cache();
  const std::vector<int> candidates{3, 4, 5, 6};
  const double v = calibrate_streaming_v(cache, candidates, 1'000.0);
  EXPECT_GT(v, 0.0);
  // Linear in the pivot.
  EXPECT_NEAR(calibrate_streaming_v(cache, candidates, 2'000.0), 2.0 * v,
              1e-6 * v);
  EXPECT_THROW(calibrate_streaming_v(cache, {}, 1.0), std::invalid_argument);
  EXPECT_THROW(calibrate_streaming_v(cache, candidates, -1.0),
               std::invalid_argument);
  EXPECT_THROW(calibrate_streaming_v(cache, {5}, 1.0), std::invalid_argument);
}

TEST(StreamingTest, ConfigValidation) {
  const auto& cache = shared_cache();
  LyapunovDepthController controller(1.0);
  ConstantChannel channel(100.0);
  StreamingConfig config;
  config.steps = 0;
  EXPECT_THROW(run_streaming_session(config, cache, controller, channel),
               std::invalid_argument);
  config.steps = 10;
  config.candidates = {};
  EXPECT_THROW(run_streaming_session(config, cache, controller, channel),
               std::invalid_argument);
  config.candidates = {42};
  EXPECT_THROW(run_streaming_session(config, cache, controller, channel),
               std::invalid_argument);
}

// ----------------------------------------------------------------- Edge ----

TEST(JainFairnessTest, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness_index({1, 1, 1, 1}), 1.0);
  EXPECT_NEAR(jain_fairness_index({1, 0, 0, 0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness_index({}), 0.0);
  // All-equal input is perfectly fair even when the equal value is zero
  // (an idle fleet favours nobody); serving_test covers the rest of the
  // degenerate cases at the index's new home in serving/metrics.
  EXPECT_DOUBLE_EQ(jain_fairness_index({0, 0}), 1.0);
}

TEST(EdgeScenarioTest, IdenticalDevicesAreFair) {
  const auto& cache = shared_cache();
  EdgeConfig config;
  config.steps = 400;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(cache, config.candidates,
                                   4.0 * cache.workload(0).bytes(5));
  const std::vector<const FrameStatsCache*> caches{&cache, &cache, &cache};
  // Link fits 3 devices at depth ~5.
  ConstantChannel channel(3.0 * cache.workload(0).bytes(5) * 1.2);
  const EdgeResult result = run_edge_scenario(config, caches, channel);
  ASSERT_EQ(result.device_traces.size(), 3U);
  EXPECT_GT(result.quality_fairness, 0.99);
  for (const Trace& trace : result.device_traces) {
    EXPECT_NE(trace.summarize().stability.verdict,
              StabilityVerdict::kDivergent);
  }
}

TEST(EdgeScenarioTest, LocalControlKeepsEnsembleStable) {
  // More devices than the link comfortably fits at max depth: every local
  // controller must back off to a sustainable depth without coordination.
  const auto& cache = shared_cache();
  EdgeConfig config;
  config.steps = 1'500;
  config.candidates = {3, 4, 5, 6, 7, 8};
  config.v = calibrate_streaming_v(cache, config.candidates,
                                   4.0 * cache.workload(0).bytes(5));
  const std::vector<const FrameStatsCache*> caches{&cache, &cache, &cache,
                                                   &cache};
  // Capacity fits 4 devices only around depth 4-5.
  ConstantChannel channel(4.0 * cache.workload(0).bytes(4) * 1.5);
  const EdgeResult result = run_edge_scenario(config, caches, channel);
  for (const Trace& trace : result.device_traces) {
    const TraceSummary s = trace.summarize();
    EXPECT_NE(s.stability.verdict, StabilityVerdict::kDivergent);
    EXPECT_LT(s.mean_depth, 8.0);  // backed off from max
  }
}

TEST(EdgeScenarioTest, WorkConservingBeatsEqualSplit) {
  const auto& cache = shared_cache();
  EdgeConfig equal_config;
  equal_config.steps = 800;
  equal_config.candidates = {3, 4, 5, 6};
  equal_config.v = calibrate_streaming_v(cache, equal_config.candidates,
                                         4.0 * cache.workload(0).bytes(5));
  equal_config.share = SharePolicy::kEqual;
  EdgeConfig wc_config = equal_config;
  wc_config.share = SharePolicy::kWorkConserving;

  const std::vector<const FrameStatsCache*> caches{&cache, &cache};
  const double capacity = 2.0 * cache.workload(0).bytes(5) * 1.1;
  ConstantChannel ch1(capacity), ch2(capacity);
  const EdgeResult equal = run_edge_scenario(equal_config, caches, ch1);
  const EdgeResult wc = run_edge_scenario(wc_config, caches, ch2);
  // Work conservation can only reduce total backlog.
  EXPECT_LE(wc.total_time_average_backlog,
            equal.total_time_average_backlog * 1.05);
}

TEST(EdgeScenarioTest, Validation) {
  const auto& cache = shared_cache();
  ConstantChannel channel(100.0);
  EdgeConfig config;
  EXPECT_THROW(run_edge_scenario(config, {}, channel), std::invalid_argument);
  EXPECT_THROW(run_edge_scenario(config, {nullptr}, channel),
               std::invalid_argument);
  config.steps = 0;
  EXPECT_THROW(run_edge_scenario(config, {&cache}, channel),
               std::invalid_argument);
  config.steps = 10;
  config.candidates = {99};
  EXPECT_THROW(run_edge_scenario(config, {&cache}, channel),
               std::invalid_argument);
  // Too short to summarize fails loudly, not with silent zero metrics.
  config = EdgeConfig{};
  config.candidates = {3, 4, 5};
  config.steps = 5;
  EXPECT_THROW(run_edge_scenario(config, {&cache}, channel),
               std::logic_error);
}

}  // namespace
}  // namespace arvis
