// Tests for the core contribution: the drift-plus-penalty rule (eq. (3)),
// the depth controllers, the paper's Algorithm 1 erratum, and the analytic
// O(1/V)/O(V) bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "delay/workload.hpp"
#include "lyapunov/bounds.hpp"
#include "lyapunov/depth_controller.hpp"
#include "lyapunov/drift_plus_penalty.hpp"
#include "quality/quality_model.hpp"
#include "queueing/queue.hpp"

namespace arvis {
namespace {

// Depth-indexed tables for a typical frame (index = depth 0..6).
const std::vector<double> kPoints{1, 8, 60, 450, 3'200, 20'000, 90'000};
const std::vector<int> kCandidates{2, 3, 4, 5, 6};

DepthContext make_context(double backlog, const QualityModel& q,
                          const WorkloadMap& w) {
  DepthContext ctx;
  ctx.queue_backlog = backlog;
  ctx.quality = &q;
  ctx.workload = &w;
  return ctx;
}

// ------------------------------------------------- drift_plus_penalty ----

TEST(DriftPlusPenaltyTest, EmptyQueuePicksMaxUtility) {
  // Q = 0: objective = V·p, maximized by the highest-utility action.
  const std::vector<double> p{1, 2, 3};
  const std::vector<double> a{10, 20, 30};
  const DppDecision d = drift_plus_penalty_argmax(p, a, 5.0, 0.0);
  EXPECT_EQ(d.index, 2U);
  EXPECT_DOUBLE_EQ(d.objective, 15.0);
}

TEST(DriftPlusPenaltyTest, ZeroVPicksMinArrivals) {
  // V = 0: objective = −Q·a, maximized by the cheapest action.
  const std::vector<double> p{1, 2, 3};
  const std::vector<double> a{10, 20, 30};
  const DppDecision d = drift_plus_penalty_argmax(p, a, 0.0, 7.0);
  EXPECT_EQ(d.index, 0U);
}

TEST(DriftPlusPenaltyTest, TieBreaksTowardLowerIndex) {
  // Identical actions: the first must win (stability-friendly).
  const std::vector<double> p{1, 1, 1};
  const std::vector<double> a{5, 5, 5};
  EXPECT_EQ(drift_plus_penalty_argmax(p, a, 3.0, 2.0).index, 0U);
}

TEST(DriftPlusPenaltyTest, SwitchoverAtAnalyticBacklog) {
  // Two actions with p == a (point-count quality): objective (V−Q)·a.
  // Q < V -> pick big; Q > V -> pick small; Q == V -> tie -> small.
  const std::vector<double> pa{100, 1'000};
  for (double v : {50.0, 500.0, 5'000.0}) {
    EXPECT_EQ(drift_plus_penalty_argmax(pa, pa, v, v * 0.99).index, 1U);
    EXPECT_EQ(drift_plus_penalty_argmax(pa, pa, v, v * 1.01).index, 0U);
    EXPECT_EQ(drift_plus_penalty_argmax(pa, pa, v, v).index, 0U);
  }
}

TEST(DriftPlusPenaltyTest, InputValidation) {
  const std::vector<double> p{1, 2};
  const std::vector<double> a{1, 2, 3};
  EXPECT_THROW(drift_plus_penalty_argmax(p, a, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(drift_plus_penalty_argmax({}, {}, 1.0, 0.0),
               std::invalid_argument);
  const std::vector<double> a2{1.0, 2.0};
  EXPECT_THROW(drift_plus_penalty_argmax(p, a2, -1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(drift_plus_penalty_argmax(p, a2, 1.0, -0.1),
               std::invalid_argument);
}

// ------------------------------------------------ Algorithm 1 erratum ----

TEST(Algorithm1ErratumTest, LiteralPseudoCodeInvertsTheDecision) {
  // DESIGN.md §1: Algorithm 1 as printed keeps the MINIMUM of
  // I = V·p − Q·a, which is the exact opposite of eq. (3)'s argmax.
  const std::vector<double> p{1, 2, 3};
  const std::vector<double> a{10, 20, 30};
  const DppDecision correct = drift_plus_penalty_argmax(p, a, 1.0, 5.0);
  const DppDecision literal = algorithm1_literal(p, a, 1.0, 5.0);
  EXPECT_EQ(correct.index, 0U);  // backlog dominates: cheapest
  EXPECT_EQ(literal.index, 2U);  // literal picks the most expensive
}

TEST(Algorithm1ErratumTest, LiteralControllerDestabilizesUnderBacklog) {
  // Under any positive backlog the literal rule chooses the deepest octree —
  // exactly the "only max-Depth" divergence of Fig. 2(a), contradicting the
  // paper's own proposed-curve. This documents why we implement the argmax.
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  LiteralAlgorithm1Controller literal(1.0);
  LyapunovDepthController proposed(1.0);
  const DepthContext ctx = make_context(10'000.0, quality, workload);
  EXPECT_EQ(literal.decide(kCandidates, ctx), kCandidates.back());
  EXPECT_EQ(proposed.decide(kCandidates, ctx), kCandidates.front());
}

// --------------------------------------------- LyapunovDepthController ----

TEST(LyapunovControllerTest, DepthNonIncreasingInBacklog) {
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  LyapunovDepthController controller(500.0);
  int previous = kCandidates.back() + 1;
  for (double q : {0.0, 10.0, 100.0, 400.0, 499.0, 501.0, 5'000.0, 1e8}) {
    const int depth =
        controller.decide(kCandidates, make_context(q, quality, workload));
    EXPECT_LE(depth, previous) << "backlog " << q;
    previous = depth;
  }
}

TEST(LyapunovControllerTest, DepthNonDecreasingInV) {
  const LogPointQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  const double backlog = 50.0;
  int previous = 0;
  for (double v : {0.0, 1e2, 1e4, 1e6, 1e8}) {
    LyapunovDepthController controller(v);
    const int depth = controller.decide(
        kCandidates, make_context(backlog, quality, workload));
    EXPECT_GE(depth, previous) << "V " << v;
    previous = depth;
  }
  EXPECT_EQ(previous, kCandidates.back());  // huge V => max depth
}

TEST(LyapunovControllerTest, ZeroVAlwaysMinimizesDelay) {
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  LyapunovDepthController controller(0.0);
  for (double q : {0.0, 5.0, 1e6}) {
    EXPECT_EQ(controller.decide(kCandidates,
                                make_context(q, quality, workload)),
              kCandidates.front());
  }
}

TEST(LyapunovControllerTest, SetVValidation) {
  LyapunovDepthController controller(1.0);
  controller.set_v(2.0);
  EXPECT_DOUBLE_EQ(controller.v(), 2.0);
  EXPECT_THROW(controller.set_v(-1.0), std::invalid_argument);
  EXPECT_THROW(LyapunovDepthController(-0.5), std::invalid_argument);
}

TEST(LyapunovControllerTest, RequiresModelsAndValidCandidates) {
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  LyapunovDepthController controller(1.0);
  DepthContext no_models;
  no_models.queue_backlog = 0.0;
  EXPECT_THROW((void)controller.decide(kCandidates, no_models),
               std::invalid_argument);
  const DepthContext ok = make_context(0.0, quality, workload);
  EXPECT_THROW((void)controller.decide({}, ok), std::invalid_argument);
  EXPECT_THROW((void)controller.decide({5, 5}, ok), std::invalid_argument);
  EXPECT_THROW((void)controller.decide({6, 5}, ok), std::invalid_argument);
}

// -------------------------------------------------- Baseline controllers ----

TEST(FixedDepthControllerTest, MinMaxSpecific) {
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  const DepthContext ctx = make_context(123.0, quality, workload);
  auto min_ctrl = FixedDepthController::min_depth();
  auto max_ctrl = FixedDepthController::max_depth();
  auto at4 = FixedDepthController::at(4);
  EXPECT_EQ(min_ctrl.decide(kCandidates, ctx), 2);
  EXPECT_EQ(max_ctrl.decide(kCandidates, ctx), 6);
  EXPECT_EQ(at4.decide(kCandidates, ctx), 4);
  EXPECT_EQ(min_ctrl.name(), "only-min-depth");
  EXPECT_EQ(max_ctrl.name(), "only-max-depth");
  EXPECT_EQ(at4.name(), "fixed-depth-4");
  auto at9 = FixedDepthController::at(9);
  EXPECT_THROW((void)at9.decide(kCandidates, ctx), std::invalid_argument);
}

TEST(RandomDepthControllerTest, StaysInSetAndCoversIt) {
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  const DepthContext ctx = make_context(0.0, quality, workload);
  RandomDepthController controller{Rng(3)};
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int d = controller.decide(kCandidates, ctx);
    EXPECT_TRUE(std::binary_search(kCandidates.begin(), kCandidates.end(), d));
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), kCandidates.size());
}

TEST(ThresholdControllerTest, HysteresisBand) {
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  ThresholdDepthController controller(100.0, 1'000.0);
  // Below low: full depth.
  EXPECT_EQ(controller.decide(kCandidates,
                              make_context(50.0, quality, workload)),
            kCandidates.back());
  // In the band: holds previous (still full depth).
  EXPECT_EQ(controller.decide(kCandidates,
                              make_context(500.0, quality, workload)),
            kCandidates.back());
  // Above high: degrade.
  EXPECT_EQ(controller.decide(kCandidates,
                              make_context(2'000.0, quality, workload)),
            kCandidates.front());
  // Back in the band: stays degraded (hysteresis).
  EXPECT_EQ(controller.decide(kCandidates,
                              make_context(500.0, quality, workload)),
            kCandidates.front());
  // Below low: recovers.
  EXPECT_EQ(controller.decide(kCandidates,
                              make_context(50.0, quality, workload)),
            kCandidates.back());
  EXPECT_THROW(ThresholdDepthController(10.0, 5.0), std::invalid_argument);
}

// ----------------------------------------------------- Closed-loop laws ----

TEST(ClosedLoopTest, LyapunovStabilizesWhereMaxDepthDiverges) {
  // Service sits between a(d_min) and a(d_max): the fixed max-depth policy
  // diverges, the Lyapunov policy must remain rate-stable.
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  const double service = 5'000.0;  // between a(4)=3200 and a(5)=20000

  LyapunovDepthController proposed(2'000.0);
  DiscreteQueue q_proposed;
  auto max_ctrl = FixedDepthController::max_depth();
  DiscreteQueue q_max;
  for (int t = 0; t < 4'000; ++t) {
    const int d1 = proposed.decide(
        kCandidates, make_context(q_proposed.backlog(), quality, workload));
    q_proposed.step(workload.arrivals(d1), service);
    const int d2 = max_ctrl.decide(
        kCandidates, make_context(q_max.backlog(), quality, workload));
    q_max.step(workload.arrivals(d2), service);
  }
  // Max-depth drift: 90000-5000 = 85000/slot -> enormous backlog.
  EXPECT_GT(q_max.backlog(), 1e8);
  // Proposed: bounded (oscillates around the V-dependent operating point).
  EXPECT_LT(q_proposed.backlog(), 1e6);
}

TEST(ClosedLoopTest, BacklogBoundHolds) {
  // Time-average backlog must respect (B + V·Δp)/ε for the *realized*
  // system constants (conservative bound; checked as an upper envelope).
  const std::vector<double> pa{100.0, 1'000.0};  // p == a, two actions
  const PointCountQuality quality(pa);
  const PointWorkload workload(pa);
  const std::vector<int> candidates{0, 1};
  const double service = 600.0;
  const double v = 5'000.0;

  LyapunovDepthController controller(v);
  DiscreteQueue queue;
  for (int t = 0; t < 50'000; ++t) {
    const int d = controller.decide(
        candidates, make_context(queue.backlog(), quality, workload));
    queue.step(workload.arrivals(d), service);
  }
  DppSystemConstants constants;
  constants.max_arrival = 1'000.0;
  constants.max_service = service;
  constants.min_utility = 100.0;
  constants.max_utility = 1'000.0;
  constants.epsilon = service - 100.0;
  const DppBounds bounds = compute_dpp_bounds(constants, v);
  EXPECT_LE(queue.time_average_backlog(), bounds.backlog_bound);
}

TEST(ClosedLoopTest, QualityGapShrinksAsVGrows) {
  // O(1/V) utility convergence: larger V must not lose time-average quality
  // relative to smaller V in a stationary system.
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  const double service = 25'000.0;  // depth 5 sustainable (a=20000), 6 not

  double previous_quality = -1.0;
  for (double v : {10.0, 100.0, 1'000.0, 10'000.0}) {
    LyapunovDepthController controller(v);
    DiscreteQueue queue;
    double q_sum = 0.0;
    const int steps = 20'000;
    for (int t = 0; t < steps; ++t) {
      const int d = controller.decide(
          kCandidates, make_context(queue.backlog(), quality, workload));
      q_sum += quality.quality(d);
      queue.step(workload.arrivals(d), service);
    }
    const double avg_quality = q_sum / steps;
    EXPECT_GE(avg_quality, previous_quality - 1e-9) << "V " << v;
    previous_quality = avg_quality;
  }
}

TEST(ClosedLoopTest, TimeAverageBacklogGrowsWithV) {
  // The other side of the tradeoff: more V -> more backlog (O(V)).
  const PointCountQuality quality(kPoints);
  const PointWorkload workload(kPoints);
  const double service = 25'000.0;

  double previous_backlog = -1.0;
  for (double v : {100.0, 10'000.0, 1'000'000.0}) {
    LyapunovDepthController controller(v);
    DiscreteQueue queue;
    for (int t = 0; t < 20'000; ++t) {
      const int d = controller.decide(
          kCandidates, make_context(queue.backlog(), quality, workload));
      queue.step(workload.arrivals(d), service);
    }
    EXPECT_GE(queue.time_average_backlog(), previous_backlog) << "V " << v;
    previous_backlog = queue.time_average_backlog();
  }
}

// ----------------------------------------------------------------- Bounds ----

TEST(BoundsTest, FormulaValues) {
  DppSystemConstants c;
  c.max_arrival = 10.0;
  c.max_service = 20.0;
  c.min_utility = 1.0;
  c.max_utility = 5.0;
  c.epsilon = 4.0;
  const DppBounds b = compute_dpp_bounds(c, 8.0);
  EXPECT_DOUBLE_EQ(b.drift_constant, 0.5 * (100.0 + 400.0));
  EXPECT_DOUBLE_EQ(b.utility_gap_bound, 250.0 / 8.0);
  EXPECT_DOUBLE_EQ(b.backlog_bound, (250.0 + 8.0 * 4.0) / 4.0);
}

TEST(BoundsTest, InfiniteCases) {
  DppSystemConstants c;
  c.max_arrival = 1.0;
  c.max_service = 1.0;
  c.max_utility = 2.0;
  c.epsilon = 0.0;  // nothing sustainable
  const DppBounds b = compute_dpp_bounds(c, 0.0);
  EXPECT_TRUE(std::isinf(b.utility_gap_bound));  // V = 0
  EXPECT_TRUE(std::isinf(b.backlog_bound));      // epsilon = 0
}

TEST(BoundsTest, Validation) {
  DppSystemConstants c;
  c.max_arrival = -1.0;
  EXPECT_THROW(compute_dpp_bounds(c, 1.0), std::invalid_argument);
  c.max_arrival = 1.0;
  c.min_utility = 5.0;
  c.max_utility = 1.0;
  EXPECT_THROW(compute_dpp_bounds(c, 1.0), std::invalid_argument);
  c.max_utility = 6.0;
  EXPECT_THROW(compute_dpp_bounds(c, -1.0), std::invalid_argument);
}

// Parameterized sweep: the switchover property of the two-action system
// holds across magnitudes (the controller is scale-equivariant in (V, Q)).
class SwitchoverSweep : public testing::TestWithParam<double> {};

TEST_P(SwitchoverSweep, PivotAtV) {
  const double v = GetParam();
  const std::vector<double> pa{10.0, 100.0};
  const PointCountQuality quality(pa);
  const PointWorkload workload(pa);
  const std::vector<int> candidates{0, 1};
  LyapunovDepthController controller(v);
  EXPECT_EQ(controller.decide(candidates,
                              make_context(v * 0.9, quality, workload)),
            1);
  EXPECT_EQ(controller.decide(candidates,
                              make_context(v * 1.1, quality, workload)),
            0);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, SwitchoverSweep,
                         testing::Values(1.0, 1e2, 1e4, 1e6, 1e8));

}  // namespace
}  // namespace arvis
