// Tests for time-series analysis and report building.
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "analysis/time_series.hpp"

namespace arvis {
namespace {

TEST(RunningMeanTest, PrefixAverages) {
  const auto out = running_mean({2.0, 4.0, 6.0});
  ASSERT_EQ(out.size(), 3U);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
  EXPECT_TRUE(running_mean({}).empty());
}

TEST(MovingAverageTest, SmoothsAndClampsEdges) {
  const std::vector<double> series{0, 0, 10, 0, 0};
  const auto out = moving_average(series, 3);
  ASSERT_EQ(out.size(), 5U);
  EXPECT_NEAR(out[2], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(out[1], 10.0 / 3.0, 1e-12);
  // Window 1 is the identity.
  EXPECT_EQ(moving_average(series, 1), series);
  EXPECT_THROW(moving_average(series, 0), std::invalid_argument);
}

TEST(FindControlDropTest, DetectsPersistentDrop) {
  std::vector<int> depths(800, 10);
  for (std::size_t t = 400; t < 800; ++t) depths[t] = 6;
  const auto drop = find_control_drop(depths);
  ASSERT_TRUE(drop.has_value());
  // Smoothing (centered window 32) may pull the detection up to half a
  // window ahead of the raw edge.
  EXPECT_NEAR(static_cast<double>(*drop), 400.0, 17.0);
}

TEST(FindControlDropTest, IgnoresTransientDips) {
  std::vector<int> depths(800, 10);
  depths[100] = 6;  // single-slot dip: not persistent
  for (std::size_t t = 500; t < 800; ++t) depths[t] = 7;
  const auto drop = find_control_drop(depths, 16, 32);
  ASSERT_TRUE(drop.has_value());
  EXPECT_NEAR(static_cast<double>(*drop), 500.0, 17.0);
}

TEST(FindControlDropTest, DetectsDropUnderTimeSharing) {
  // Post-pivot drift-plus-penalty behaviour: after t=400 the controller
  // time-shares one max-depth slot per three min-depth slots, so the raw
  // series keeps touching the plateau — the smoothed detector must still
  // report the knee near 400.
  std::vector<int> depths(800, 10);
  for (std::size_t t = 400; t < 800; ++t) depths[t] = (t % 4 == 0) ? 10 : 5;
  const auto drop = find_control_drop(depths);
  ASSERT_TRUE(drop.has_value());
  EXPECT_NEAR(static_cast<double>(*drop), 400.0, 20.0);
}

TEST(FindControlDropTest, NoDropOnConstantSeries) {
  EXPECT_FALSE(find_control_drop(std::vector<int>(800, 5)).has_value());
  EXPECT_FALSE(find_control_drop(std::vector<int>(10, 5)).has_value());
}

TEST(DownsampleIndicesTest, KeepsEndpointsAndTargetSize) {
  const auto idx = downsample_indices(800, 40);
  ASSERT_EQ(idx.size(), 40U);
  EXPECT_EQ(idx.front(), 0U);
  EXPECT_EQ(idx.back(), 799U);
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_GT(idx[i], idx[i - 1]);
}

TEST(DownsampleIndicesTest, SmallInputsPassThrough) {
  EXPECT_EQ(downsample_indices(5, 40).size(), 5U);
  EXPECT_TRUE(downsample_indices(0, 40).empty());
}

Trace make_trace(std::size_t n, int depth, double backlog_slope) {
  Trace trace;
  for (std::size_t t = 0; t < n; ++t) {
    StepRecord r;
    r.t = t;
    r.depth = depth;
    r.backlog_begin = backlog_slope * static_cast<double>(t);
    r.backlog_end = backlog_slope * static_cast<double>(t + 1);
    r.quality = static_cast<double>(depth);
    r.arrivals = 1.0;
    r.service = 1.0;
    trace.add(r);
  }
  return trace;
}

TEST(ReportTest, BacklogSeriesTableColumnsPerRun) {
  const Trace a = make_trace(100, 5, 0.0);
  const Trace b = make_trace(100, 10, 2.0);
  const CsvTable table =
      backlog_series_table({{"min", &a}, {"max", &b}}, 10);
  EXPECT_EQ(table.column_count(), 3U);
  EXPECT_EQ(table.row_count(), 10U);
  EXPECT_EQ(table.header()[1], "min");
  // Last row t=99, max backlog 198.
  EXPECT_DOUBLE_EQ(std::get<double>(table.at(9, 2)), 198.0);
}

TEST(ReportTest, DepthSeriesTableHoldsIntegers) {
  const Trace a = make_trace(50, 7, 0.0);
  const CsvTable table = depth_series_table({{"run", &a}}, 5);
  EXPECT_EQ(std::get<std::int64_t>(table.at(0, 1)), 7);
}

TEST(ReportTest, SummaryTableVerdicts) {
  const Trace stable = make_trace(200, 5, 0.0);
  const Trace divergent = make_trace(200, 10, 100.0);
  const CsvTable table =
      summary_table({{"stable", &stable}, {"divergent", &divergent}});
  EXPECT_EQ(table.row_count(), 2U);
  EXPECT_EQ(std::get<std::string>(table.at(0, 6)), "convergent-to-zero");
  EXPECT_EQ(std::get<std::string>(table.at(1, 6)), "divergent");
}

TEST(ReportTest, ValidatesRuns) {
  const Trace a = make_trace(100, 5, 0.0);
  const Trace shorter = make_trace(50, 5, 0.0);
  EXPECT_THROW(backlog_series_table({}), std::invalid_argument);
  EXPECT_THROW(backlog_series_table({{"x", nullptr}}), std::invalid_argument);
  EXPECT_THROW(backlog_series_table({{"a", &a}, {"b", &shorter}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace arvis
