// Tests for the PLY reader/writer: round trips, format tolerance, and
// malformed-input handling.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "pointcloud/ply_io.hpp"

namespace arvis {
namespace {

PointCloud sample_cloud(bool with_colors) {
  Rng rng(77);
  PointCloud cloud;
  for (int i = 0; i < 257; ++i) {  // odd count to catch stride bugs
    const Vec3f p{rng.next_float() * 10 - 5, rng.next_float() * 10 - 5,
                  rng.next_float() * 10 - 5};
    if (with_colors) {
      cloud.add_point(p, {static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256))});
    } else {
      cloud.add_point(p);
    }
  }
  return cloud;
}

void expect_equal_clouds(const PointCloud& a, const PointCloud& b,
                         float tolerance) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.has_colors(), b.has_colors());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.position(i).x, b.position(i).x, tolerance);
    EXPECT_NEAR(a.position(i).y, b.position(i).y, tolerance);
    EXPECT_NEAR(a.position(i).z, b.position(i).z, tolerance);
    if (a.has_colors()) {
      EXPECT_EQ(a.color(i), b.color(i));
    }
  }
}

TEST(PlyIoTest, BinaryRoundTripWithColors) {
  const PointCloud original = sample_cloud(true);
  std::stringstream buffer;
  ASSERT_TRUE(write_ply(buffer, original, PlyFormat::kBinaryLittleEndian).ok());
  const auto loaded = read_ply(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  expect_equal_clouds(original, *loaded, 0.0F);  // float32 exact round trip
}

TEST(PlyIoTest, BinaryRoundTripWithoutColors) {
  const PointCloud original = sample_cloud(false);
  std::stringstream buffer;
  ASSERT_TRUE(write_ply(buffer, original, PlyFormat::kBinaryLittleEndian).ok());
  const auto loaded = read_ply(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_colors());
  expect_equal_clouds(original, *loaded, 0.0F);
}

TEST(PlyIoTest, AsciiRoundTrip) {
  const PointCloud original = sample_cloud(true);
  std::stringstream buffer;
  ASSERT_TRUE(write_ply(buffer, original, PlyFormat::kAscii).ok());
  const auto loaded = read_ply(buffer);
  ASSERT_TRUE(loaded.ok());
  expect_equal_clouds(original, *loaded, 1e-4F);  // text round trip
}

TEST(PlyIoTest, EmptyCloudRoundTrip) {
  std::stringstream buffer;
  ASSERT_TRUE(write_ply(buffer, PointCloud{}, PlyFormat::kAscii).ok());
  const auto loaded = read_ply(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(PlyIoTest, ReadsDoublePrecisionAndSkipsUnknownProperties) {
  // Open3D and others write double coordinates and extra properties.
  const std::string text =
      "ply\n"
      "format ascii 1.0\n"
      "comment test file\n"
      "element vertex 2\n"
      "property double x\n"
      "property double y\n"
      "property double z\n"
      "property float confidence\n"
      "property uchar red\n"
      "property uchar green\n"
      "property uchar blue\n"
      "end_header\n"
      "1.5 2.5 3.5 0.9 10 20 30\n"
      "-1 -2 -3 0.1 40 50 60\n";
  std::istringstream in(text);
  const auto loaded = read_ply(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  ASSERT_EQ(loaded->size(), 2U);
  EXPECT_FLOAT_EQ(loaded->position(0).x, 1.5F);
  EXPECT_FLOAT_EQ(loaded->position(1).z, -3.0F);
  ASSERT_TRUE(loaded->has_colors());
  EXPECT_EQ(loaded->color(1), (Color8{40, 50, 60}));
}

TEST(PlyIoTest, ToleratesCrlfHeaders) {
  const std::string text =
      "ply\r\n"
      "format ascii 1.0\r\n"
      "element vertex 1\r\n"
      "property float x\r\n"
      "property float y\r\n"
      "property float z\r\n"
      "end_header\r\n"
      "1 2 3\n";
  std::istringstream in(text);
  const auto loaded = read_ply(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->size(), 1U);
}

TEST(PlyIoTest, RejectsMissingMagic) {
  std::istringstream in("plyx\nformat ascii 1.0\nend_header\n");
  const auto loaded = read_ply(in);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(PlyIoTest, RejectsUnsupportedFormat) {
  std::istringstream in(
      "ply\nformat binary_big_endian 1.0\n"
      "element vertex 0\nproperty float x\nproperty float y\n"
      "property float z\nend_header\n");
  EXPECT_FALSE(read_ply(in).ok());
}

TEST(PlyIoTest, RejectsMissingCoordinates) {
  std::istringstream in(
      "ply\nformat ascii 1.0\nelement vertex 1\n"
      "property float x\nproperty float y\nend_header\n1 2\n");
  const auto loaded = read_ply(in);
  EXPECT_FALSE(loaded.ok());
}

TEST(PlyIoTest, RejectsTruncatedAsciiBody) {
  std::istringstream in(
      "ply\nformat ascii 1.0\nelement vertex 2\n"
      "property float x\nproperty float y\nproperty float z\n"
      "end_header\n1 2 3\n");
  const auto loaded = read_ply(in);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(PlyIoTest, RejectsTruncatedBinaryBody) {
  std::stringstream buffer;
  const PointCloud original = sample_cloud(false);
  ASSERT_TRUE(write_ply(buffer, original, PlyFormat::kBinaryLittleEndian).ok());
  std::string data = buffer.str();
  data.resize(data.size() - 5);  // chop mid-vertex
  std::istringstream in(data);
  const auto loaded = read_ply(in);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST(PlyIoTest, RejectsMissingEndHeader) {
  std::istringstream in(
      "ply\nformat ascii 1.0\nelement vertex 0\n"
      "property float x\nproperty float y\nproperty float z\n");
  EXPECT_FALSE(read_ply(in).ok());
}

TEST(PlyIoTest, RejectsListPropertyOnVertex) {
  std::istringstream in(
      "ply\nformat ascii 1.0\nelement vertex 1\n"
      "property list uchar int vertex_indices\nend_header\n");
  EXPECT_FALSE(read_ply(in).ok());
}

TEST(PlyIoTest, FileRoundTrip) {
  const PointCloud original = sample_cloud(true);
  const std::string path = testing::TempDir() + "/arvis_ply_test.ply";
  ASSERT_TRUE(write_ply_file(path, original).ok());
  const auto loaded = read_ply_file(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  expect_equal_clouds(original, *loaded, 0.0F);
}

TEST(PlyIoTest, MissingFileGivesIoError) {
  const auto loaded = read_ply_file("/nonexistent/path/file.ply");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(PlyIoTest, ReadsShortAndUShortScalars) {
  // Some exporters write 16-bit coordinates/attributes.
  const std::string text =
      "ply\nformat ascii 1.0\nelement vertex 1\n"
      "property short x\nproperty short y\nproperty ushort z\n"
      "end_header\n"
      "-5 7 40000\n";
  std::istringstream in(text);
  const auto loaded = read_ply(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_FLOAT_EQ(loaded->position(0).x, -5.0F);
  EXPECT_FLOAT_EQ(loaded->position(0).z, 40000.0F);
}

TEST(PlyIoTest, AcceptsTypeAliases) {
  // float32/uint8 spellings (used by some tools) parse like float/uchar.
  const std::string text =
      "ply\nformat ascii 1.0\nelement vertex 1\n"
      "property float32 x\nproperty float32 y\nproperty float32 z\n"
      "property uint8 red\nproperty uint8 green\nproperty uint8 blue\n"
      "end_header\n"
      "1 2 3 9 8 7\n";
  std::istringstream in(text);
  const auto loaded = read_ply(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->color(0), (Color8{9, 8, 7}));
}

TEST(PlyIoTest, IgnoresTrailingNonVertexElements) {
  const std::string text =
      "ply\nformat ascii 1.0\n"
      "element vertex 1\n"
      "property float x\nproperty float y\nproperty float z\n"
      "element face 1\n"
      "property list uchar int vertex_indices\n"
      "end_header\n"
      "1 2 3\n"
      "3 0 0 0\n";
  std::istringstream in(text);
  const auto loaded = read_ply(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->size(), 1U);
}

}  // namespace
}  // namespace arvis
