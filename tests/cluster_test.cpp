// Tests for the multi-link EdgeCluster: the K = 1 / round-robin special case
// must reproduce the single-link runtime bit for bit, placement policies must
// differ where they should (least-loaded rescues skewed bursts round-robin
// strands; best-fit packs tight links first), parallel decide fan-out must be
// bit-identical to serial, and the steady-state slot loop must be
// allocation-free (counting global operator new probe).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <variant>

#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/cluster.hpp"
#include "serving/session_manager.hpp"
#include "support/alloc_probe.hpp"

using arvis_test::g_allocations;

namespace arvis {
namespace {

const FrameStatsCache& shared_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

double cheapest_load(const std::vector<int>& candidates) {
  return AdmissionController::cheapest_depth_load(shared_cache(), candidates);
}

ServingConfig base_serving_config() {
  ServingConfig config;
  config.steps = 120;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(shared_cache(), config.candidates,
                                   4.0 * shared_cache().workload(0).bytes(5));
  config.admission.utilization_target = 1.0;
  return config;
}

std::vector<SessionSpec> churn_specs(std::size_t n) {
  std::vector<SessionSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].cache = &shared_cache();
    specs[i].arrival_slot = 5 * i;
    specs[i].departure_slot = (i % 3 == 0) ? 5 * i + 70 : kNeverDeparts;
    specs[i].weight = (i % 2 == 0) ? 1.0 : 2.0;
    specs[i].seed = 1'000 + i;
  }
  return specs;
}

void expect_traces_bit_identical(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.at(t).depth, b.at(t).depth);
    EXPECT_EQ(a.at(t).arrivals, b.at(t).arrivals);
    EXPECT_EQ(a.at(t).service, b.at(t).service);
    EXPECT_EQ(a.at(t).backlog_begin, b.at(t).backlog_begin);
    EXPECT_EQ(a.at(t).backlog_end, b.at(t).backlog_end);
    EXPECT_EQ(a.at(t).quality, b.at(t).quality);
  }
}

// ---------------------------------------------------- K = 1 equivalence ----

TEST(EdgeClusterTest, K1RoundRobinReproducesSingleLinkBitForBit) {
  ServingConfig serving = base_serving_config();
  serving.steps = 150;
  serving.policy = SchedulerPolicy::kProportionalFair;
  const auto specs = churn_specs(9);
  const double capacity = 6.0 * shared_cache().workload(0).bytes(4);

  // Identically seeded Gilbert-Elliott streams so both runs draw the same
  // time-varying capacity sequence.
  GilbertElliottChannel single_channel(capacity, 0.4, 0.1, 0.3, Rng(42));
  const ServingResult single =
      run_serving_scenario(serving, specs, single_channel);

  ClusterConfig cluster_config;
  cluster_config.serving = serving;
  cluster_config.placement = PlacementPolicy::kRoundRobin;
  GilbertElliottChannel cluster_channel(capacity, 0.4, 0.1, 0.3, Rng(42));
  std::vector<ChannelModel*> channels{&cluster_channel};
  const ClusterResult cluster =
      run_cluster_scenario(cluster_config, specs, channels);

  // Admission: every attempt the single link saw, the cluster's one link saw.
  EXPECT_EQ(cluster.metrics.per_link_admission[0].attempts,
            single.admission.attempts);
  EXPECT_EQ(cluster.metrics.per_link_admission[0].accepted,
            single.admission.accepted);
  EXPECT_EQ(cluster.metrics.per_link_admission[0].rejected,
            single.admission.rejected);
  EXPECT_EQ(cluster.metrics.spills, 0U);

  // Fleet summaries: bit-for-bit, not approximate (same sessions, same
  // order, same arithmetic).
  const FleetMetrics& a = cluster.metrics.fleet;
  const FleetMetrics& b = single.fleet;
  EXPECT_EQ(a.sessions_submitted, b.sessions_submitted);
  EXPECT_EQ(a.sessions_admitted, b.sessions_admitted);
  EXPECT_EQ(a.sessions_rejected, b.sessions_rejected);
  EXPECT_EQ(a.quality_fairness, b.quality_fairness);
  EXPECT_EQ(a.mean_quality, b.mean_quality);
  EXPECT_EQ(a.total_time_average_backlog, b.total_time_average_backlog);
  EXPECT_EQ(a.peak_backlog, b.peak_backlog);
  EXPECT_EQ(a.divergent_sessions, b.divergent_sessions);
  EXPECT_EQ(a.partial_summary_sessions, b.partial_summary_sessions);
  EXPECT_EQ(a.capacity_offered, b.capacity_offered);
  EXPECT_EQ(a.capacity_used, b.capacity_used);
  EXPECT_EQ(a.peak_concurrency, b.peak_concurrency);

  // Per-session: same admissions, same windows, same traces, bit for bit.
  ASSERT_EQ(cluster.sessions.size(), single.sessions.size());
  for (std::size_t i = 0; i < single.sessions.size(); ++i) {
    const SessionOutcome& cs = cluster.sessions[i].session;
    const SessionOutcome& ss = single.sessions[i];
    EXPECT_EQ(cs.id, ss.id);
    EXPECT_EQ(cs.admitted, ss.admitted);
    EXPECT_EQ(cs.arrival_slot, ss.arrival_slot);
    EXPECT_EQ(cs.departure_slot, ss.departure_slot);
    EXPECT_EQ(cs.has_summary, ss.has_summary);
    if (cs.has_summary) {
      EXPECT_EQ(cs.summary.time_average_quality,
                ss.summary.time_average_quality);
      EXPECT_EQ(cs.summary.time_average_backlog,
                ss.summary.time_average_backlog);
      EXPECT_EQ(cs.summary.mean_depth, ss.summary.mean_depth);
    }
    expect_traces_bit_identical(cs.trace, ss.trace);
    if (cs.admitted) {
      EXPECT_EQ(cluster.sessions[i].link, 0);
    }
  }
}

// ----------------------------------------------------- placement policy ----

// K = 4, every link fits exactly two cheapest-depth sessions. Eight initial
// sessions fill the cluster symmetrically (round-robin and least-loaded make
// identical choices). The four sessions on links 0 and 1 then depart, and a
// burst of four arrives: round-robin's rotation walks into the still-full
// links 2 and 3 and (with one spill) strands an arrival, while least-loaded
// steers the whole burst into the freed links.
std::vector<SessionSpec> skewed_burst_specs() {
  std::vector<SessionSpec> specs(12);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].cache = &shared_cache();
    specs[i].seed = i;
  }
  // Round-robin placement of the initial eight: i -> link i % 4. The
  // departing four are exactly those placed on links 0 and 1.
  for (std::size_t i : {0U, 1U, 4U, 5U}) specs[i].departure_slot = 40;
  for (std::size_t i = 8; i < 12; ++i) specs[i].arrival_slot = 50;
  return specs;
}

ClusterResult run_skewed_burst(PlacementPolicy placement) {
  ServingConfig serving = base_serving_config();
  serving.steps = 80;
  ClusterConfig config;
  config.serving = serving;
  config.placement = placement;

  const double load = cheapest_load(serving.candidates);
  std::vector<ConstantChannel> channels(4, ConstantChannel(2.5 * load));
  std::vector<ChannelModel*> links;
  for (auto& c : channels) links.push_back(&c);
  return run_cluster_scenario(config, skewed_burst_specs(), links);
}

TEST(EdgeClusterTest, LeastLoadedAdmitsMoreThanRoundRobinUnderSkewedBursts) {
  const ClusterResult rr = run_skewed_burst(PlacementPolicy::kRoundRobin);
  const ClusterResult ll = run_skewed_burst(PlacementPolicy::kLeastLoaded);

  // Both fill the initial symmetric wave...
  EXPECT_EQ(rr.metrics.fleet.sessions_admitted, 11U);
  EXPECT_EQ(rr.metrics.placement_rejects, 1U);
  EXPECT_EQ(rr.metrics.spills, 1U);  // one burst arrival rescued by spill
  // ...but only least-loaded lands the whole burst in the freed links.
  EXPECT_EQ(ll.metrics.fleet.sessions_admitted, 12U);
  EXPECT_EQ(ll.metrics.placement_rejects, 0U);
  EXPECT_GT(ll.metrics.fleet.sessions_admitted,
            rr.metrics.fleet.sessions_admitted);
}

TEST(EdgeClusterTest, BestFitPacksTightLinksAndAvoidsSpills) {
  ServingConfig serving = base_serving_config();
  serving.steps = 40;
  const double load = cheapest_load(serving.candidates);
  ConstantChannel tight(1.3 * load);
  ConstantChannel roomy(3.0 * load);
  std::vector<ChannelModel*> links{&tight, &roomy};

  std::vector<SessionSpec> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].cache = &shared_cache();
    specs[i].seed = i;
    specs[i].arrival_slot = i;  // sequential arrivals: placement sees each
  }

  ClusterConfig config;
  config.serving = serving;
  config.placement = PlacementPolicy::kBestFit;
  const ClusterResult best = run_cluster_scenario(config, specs, links);
  // First session fits both; the tight link is the tighter fit. Every later
  // session only fits the roomy link, and best-fit never has to spill.
  EXPECT_EQ(best.sessions[0].link, 0);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(best.sessions[i].link, 1) << i;
    EXPECT_FALSE(best.sessions[i].spilled) << i;
  }
  EXPECT_EQ(best.metrics.spills, 0U);
  EXPECT_EQ(best.metrics.fleet.sessions_admitted, 4U);

  // Least-loaded walks into the full tight link and needs the spill to
  // recover — same admissions, worse placement work.
  ConstantChannel tight2(1.3 * load);
  ConstantChannel roomy2(3.0 * load);
  std::vector<ChannelModel*> links2{&tight2, &roomy2};
  config.placement = PlacementPolicy::kLeastLoaded;
  const ClusterResult least = run_cluster_scenario(config, specs, links2);
  EXPECT_EQ(least.metrics.fleet.sessions_admitted, 4U);
  EXPECT_GT(least.metrics.spills, 0U);
}

// --------------------------------------------------------- determinism ----

TEST(EdgeClusterTest, ParallelDecideFanOutMatchesSerialBitForBit) {
  ServingConfig serving = base_serving_config();
  serving.steps = 100;
  serving.policy = SchedulerPolicy::kWorkConserving;
  const auto specs = churn_specs(12);
  const double capacity = 5.0 * shared_cache().workload(0).bytes(4);

  auto run_with_threads = [&](std::size_t threads) {
    ClusterConfig config;
    config.serving = serving;
    config.serving.threads = threads;
    config.placement = PlacementPolicy::kLeastLoaded;
    GilbertElliottChannel c0(capacity, 0.5, 0.1, 0.4, Rng(7));
    GilbertElliottChannel c1(capacity, 0.5, 0.1, 0.4, Rng(8));
    GilbertElliottChannel c2(capacity, 0.5, 0.1, 0.4, Rng(9));
    std::vector<ChannelModel*> links{&c0, &c1, &c2};
    return run_cluster_scenario(config, specs, links);
  };

  const ClusterResult serial = run_with_threads(1);
  const ClusterResult parallel = run_with_threads(4);

  ASSERT_EQ(serial.sessions.size(), parallel.sessions.size());
  for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
    EXPECT_EQ(serial.sessions[i].link, parallel.sessions[i].link);
    EXPECT_EQ(serial.sessions[i].spilled, parallel.sessions[i].spilled);
    expect_traces_bit_identical(serial.sessions[i].session.trace,
                                parallel.sessions[i].session.trace);
  }
  EXPECT_EQ(serial.metrics.fleet.quality_fairness,
            parallel.metrics.fleet.quality_fairness);
  EXPECT_EQ(serial.metrics.fleet.capacity_used,
            parallel.metrics.fleet.capacity_used);
  EXPECT_EQ(serial.metrics.link_load_fairness,
            parallel.metrics.link_load_fairness);
}

// ------------------------------------------------------ metrics rollup ----

TEST(EdgeClusterTest, MetricsRollUpAcrossLinks) {
  const ClusterResult result = run_skewed_burst(PlacementPolicy::kLeastLoaded);
  ASSERT_EQ(result.metrics.link_count, 4U);
  ASSERT_EQ(result.metrics.per_link.size(), 4U);
  ASSERT_EQ(result.metrics.per_link_admission.size(), 4U);

  double offered = 0.0, used = 0.0;
  std::size_t placed = 0;
  for (const FleetMetrics& link : result.metrics.per_link) {
    offered += link.capacity_offered;
    used += link.capacity_used;
    placed += link.sessions_admitted;
  }
  EXPECT_DOUBLE_EQ(result.metrics.fleet.capacity_offered, offered);
  EXPECT_DOUBLE_EQ(result.metrics.fleet.capacity_used, used);
  EXPECT_EQ(result.metrics.fleet.sessions_admitted, placed);
  EXPECT_GT(result.metrics.link_load_fairness, 0.0);
  EXPECT_LE(result.metrics.link_load_fairness, 1.0 + 1e-12);

  // Report tables: one row per session / per link, link column populated for
  // placed sessions.
  EXPECT_EQ(result.session_table.row_count(), result.sessions.size());
  EXPECT_EQ(result.link_table.row_count(), 4U);
  for (std::size_t i = 0; i < result.sessions.size(); ++i) {
    if (result.sessions[i].link >= 0) {
      EXPECT_EQ(std::get<std::int64_t>(result.session_table.at(i, 1)),
                result.sessions[i].link);
    } else {
      EXPECT_TRUE(std::holds_alternative<std::monostate>(
          result.session_table.at(i, 1)));
    }
  }
}

// --------------------------------------------------------- validation ----

TEST(EdgeClusterTest, Validation) {
  ClusterConfig config;
  config.serving = base_serving_config();
  EXPECT_THROW(EdgeCluster(config, {}), std::invalid_argument);

  EdgeCluster cluster(config, {1e6, 1e6});
  SessionSpec bad;
  EXPECT_THROW(cluster.submit(bad), std::invalid_argument);  // null cache
  EXPECT_THROW(cluster.step({1e6}), std::invalid_argument);  // K mismatch

  SessionSpec ok;
  ok.cache = &shared_cache();
  cluster.submit(ok);
  cluster.step({1e6, 1e6});
  EXPECT_EQ(cluster.active_count(), 1U);
  EXPECT_EQ(cluster.slot(), 1U);
  const ClusterResult result = cluster.finish();
  EXPECT_EQ(result.sessions.size(), 1U);
  EXPECT_THROW(cluster.step({1e6, 1e6}), std::logic_error);
  EXPECT_THROW(static_cast<void>(cluster.submit(ok)), std::logic_error);
  EXPECT_THROW(static_cast<void>(cluster.finish()), std::logic_error);

  const std::vector<ChannelModel*> none;
  EXPECT_THROW(run_cluster_scenario(config, {}, none), std::invalid_argument);
  const std::vector<ChannelModel*> null_link{nullptr};
  EXPECT_THROW(run_cluster_scenario(config, {}, null_link),
               std::invalid_argument);
}

// ------------------------------------------------- allocation freedom ----

TEST(AllocationProbeTest, SingleLinkSteadyStateStepIsAllocationFree) {
  ServingConfig config = base_serving_config();
  config.steps = 120;
  config.policy = SchedulerPolicy::kWorkConserving;
  config.threads = 1;
  const double capacity = 6.0 * shared_cache().workload(0).bytes(4);
  SessionManager manager(config, capacity);
  for (std::size_t i = 0; i < 6; ++i) {
    SessionSpec spec;
    spec.cache = &shared_cache();
    spec.seed = i;
    manager.submit(spec);
  }
  // Warm-up: admissions, trace reservations, scheduler scratch growth.
  for (int t = 0; t < 30; ++t) manager.step(capacity);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int t = 0; t < 60; ++t) manager.step(capacity);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0U)
      << "steady-state slot loop performed " << (after - before)
      << " heap allocations over 60 slots";
  static_cast<void>(manager.finish());
}

TEST(AllocationProbeTest, ClusterSteadyStateStepIsAllocationFree) {
  ClusterConfig config;
  config.serving = base_serving_config();
  config.serving.steps = 120;
  config.serving.threads = 1;
  const double capacity = 4.0 * shared_cache().workload(0).bytes(4);
  EdgeCluster cluster(config, {capacity, capacity});
  for (std::size_t i = 0; i < 6; ++i) {
    SessionSpec spec;
    spec.cache = &shared_cache();
    spec.seed = i;
    cluster.submit(spec);
  }
  std::vector<double> caps{capacity, capacity};
  for (int t = 0; t < 30; ++t) cluster.step(caps);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int t = 0; t < 60; ++t) cluster.step(caps);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0U)
      << "steady-state cluster loop performed " << (after - before)
      << " heap allocations over 60 slots";
  static_cast<void>(cluster.finish());
}

}  // namespace
}  // namespace arvis
