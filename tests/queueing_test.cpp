// Tests for discrete-time queues, arrival processes and stability analysis.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "queueing/arrival_process.hpp"
#include "queueing/queue.hpp"
#include "queueing/stability.hpp"

namespace arvis {
namespace {

// -------------------------------------------------------- DiscreteQueue ----

TEST(DiscreteQueueTest, LindleyRecursion) {
  DiscreteQueue q;
  EXPECT_DOUBLE_EQ(q.backlog(), 0.0);
  EXPECT_DOUBLE_EQ(q.step(10.0, 3.0), 10.0);   // empty queue: nothing served
  EXPECT_DOUBLE_EQ(q.step(5.0, 3.0), 12.0);    // 10 - 3 + 5
  EXPECT_DOUBLE_EQ(q.step(0.0, 20.0), 0.0);    // over-service floors at zero
  EXPECT_EQ(q.time(), 3U);
}

TEST(DiscreteQueueTest, LastServedReportsDrainedBytesOnly) {
  DiscreteQueue q;
  EXPECT_DOUBLE_EQ(q.last_served(), 0.0);  // nothing stepped yet
  q.step(10.0, 8.0);
  // Same-slot arrivals enter after service: an empty queue drains nothing
  // even though 8 bytes of service met 10 bytes of demand.
  EXPECT_DOUBLE_EQ(q.last_served(), 0.0);
  q.step(5.0, 8.0);
  EXPECT_DOUBLE_EQ(q.last_served(), 8.0);  // backlog 10, service 8
  q.step(0.0, 100.0);
  EXPECT_DOUBLE_EQ(q.last_served(), 7.0);  // only the 7 left could drain
  q.reset();
  EXPECT_DOUBLE_EQ(q.last_served(), 0.0);
}

TEST(DiscreteQueueTest, NegativeInputsClamped) {
  DiscreteQueue q;
  q.step(-5.0, -3.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 0.0);
  EXPECT_DOUBLE_EQ(q.total_arrivals(), 0.0);
}

TEST(DiscreteQueueTest, InitialBacklogRespected) {
  DiscreteQueue q(100.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 100.0);
  q.step(0.0, 40.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 60.0);
}

TEST(DiscreteQueueTest, TimeAverageUsesSlotStartSamples) {
  DiscreteQueue q;
  q.step(10.0, 0.0);  // observed Q=0
  q.step(10.0, 0.0);  // observed Q=10
  q.step(10.0, 0.0);  // observed Q=20
  EXPECT_DOUBLE_EQ(q.time_average_backlog(), 10.0);
  EXPECT_DOUBLE_EQ(q.backlog_stats().mean(), 10.0);
  EXPECT_DOUBLE_EQ(q.backlog_stats().max(), 20.0);
}

TEST(DiscreteQueueTest, ConservationAccounting) {
  DiscreteQueue q;
  q.step(10.0, 4.0);
  q.step(2.0, 4.0);
  q.step(0.0, 100.0);
  EXPECT_DOUBLE_EQ(q.total_arrivals(), 12.0);
  EXPECT_DOUBLE_EQ(q.total_service_used() + q.backlog(), 12.0);
  EXPECT_GT(q.total_service_wasted(), 0.0);
}

TEST(DiscreteQueueTest, ResetClearsEverything) {
  DiscreteQueue q;
  q.step(10.0, 0.0);
  q.reset(5.0);
  EXPECT_DOUBLE_EQ(q.backlog(), 5.0);
  EXPECT_EQ(q.time(), 0U);
  EXPECT_DOUBLE_EQ(q.time_average_backlog(), 0.0);
}

TEST(DiscreteQueueTest, StableWhenServiceExceedsArrivals) {
  DiscreteQueue q;
  for (int t = 0; t < 10'000; ++t) q.step(5.0, 6.0);
  EXPECT_LE(q.backlog(), 5.0);  // bounded by one slot's arrivals
}

TEST(DiscreteQueueTest, DivergesWhenArrivalsExceedService) {
  DiscreteQueue q;
  for (int t = 0; t < 1'000; ++t) q.step(6.0, 5.0);
  EXPECT_NEAR(q.backlog(), 1'000.0, 10.0);  // drift = 1/slot
}

// ------------------------------------------------------------ QueueBank ----

TEST(QueueBankTest, AggregatesAcrossQueues) {
  QueueBank bank(3);
  bank.queue(0).step(10.0, 0.0);
  bank.queue(1).step(4.0, 0.0);
  bank.queue(2).step(0.0, 0.0);
  EXPECT_DOUBLE_EQ(bank.total_backlog(), 14.0);
  EXPECT_DOUBLE_EQ(bank.max_backlog(), 10.0);
  EXPECT_THROW(QueueBank(0), std::invalid_argument);
  EXPECT_THROW((void)bank.queue(3), std::out_of_range);
}

// --------------------------------------------------------- VirtualQueue ----

TEST(VirtualQueueTest, GrowsOnlyAboveBudget) {
  VirtualQueue z(5.0);
  z.step(3.0);  // under budget
  EXPECT_DOUBLE_EQ(z.backlog(), 0.0);
  z.step(9.0);  // 4 over
  EXPECT_DOUBLE_EQ(z.backlog(), 4.0);
  z.step(5.0);  // at budget: no change
  EXPECT_DOUBLE_EQ(z.backlog(), 4.0);
  EXPECT_NEAR(z.average_usage(), 17.0 / 3.0, 1e-12);
  EXPECT_THROW(VirtualQueue(-1.0), std::invalid_argument);
}

TEST(VirtualQueueTest, StableWhenAverageMeetsBudget) {
  VirtualQueue z(5.0);
  // Alternate 8 and 2: average 5 == budget, so Z stays bounded.
  for (int t = 0; t < 10'000; ++t) z.step(t % 2 == 0 ? 8.0 : 2.0);
  EXPECT_LE(z.backlog(), 8.0);
}

// ------------------------------------------------------ ArrivalProcess ----

TEST(ArrivalProcessTest, ConstantAndValidation) {
  ConstantArrivals a(7.0);
  EXPECT_DOUBLE_EQ(a.next_arrivals(), 7.0);
  EXPECT_DOUBLE_EQ(a.mean_rate(), 7.0);
  EXPECT_THROW(ConstantArrivals(-1.0), std::invalid_argument);
}

TEST(ArrivalProcessTest, PoissonMeanMatches) {
  PoissonArrivals a(12.0, Rng(7));
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(a.next_arrivals());
  EXPECT_NEAR(stats.mean(), 12.0, 0.1);
}

TEST(ArrivalProcessTest, BurstyLongRunRate) {
  // pi_on = p_off_on / (p_on_off + p_off_on) = 0.25 -> mean = 0.25 * 20.
  BurstyArrivals a(20.0, 0.3, 0.1, Rng(8));
  EXPECT_NEAR(a.mean_rate(), 5.0, 1e-9);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(a.next_arrivals());
  EXPECT_NEAR(stats.mean(), 5.0, 0.25);
}

TEST(ArrivalProcessTest, SinusoidModulationShapesTheRate) {
  SinusoidModulatedArrivals a(10.0, 0.8, 100, Rng(9));
  EXPECT_DOUBLE_EQ(a.mean_rate(), 10.0);
  // The deterministic rate curve peaks a quarter period in and bottoms out
  // at three quarters; the long-run draw average matches the base.
  EXPECT_NEAR(a.rate_at(25), 18.0, 1e-9);
  EXPECT_NEAR(a.rate_at(75), 2.0, 1e-9);
  EXPECT_NEAR(a.rate_at(0), 10.0, 1e-9);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(a.next_arrivals());
  EXPECT_NEAR(stats.mean(), 10.0, 0.15);

  EXPECT_THROW(SinusoidModulatedArrivals(-1.0, 0.5, 100, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SinusoidModulatedArrivals(1.0, 1.5, 100, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SinusoidModulatedArrivals(1.0, 0.5, 0, Rng(1)),
               std::invalid_argument);
}

TEST(ArrivalProcessTest, FlashCrowdSpikesOnlyInsideItsWindow) {
  FlashCrowdArrivals a(2.0, 25.0, 100, 50, Rng(10));
  EXPECT_DOUBLE_EQ(a.mean_rate(), 2.0);  // the spike is a transient
  EXPECT_NEAR(a.rate_at(99), 2.0, 1e-9);
  EXPECT_NEAR(a.rate_at(100), 50.0, 1e-9);
  EXPECT_NEAR(a.rate_at(149), 50.0, 1e-9);
  EXPECT_NEAR(a.rate_at(150), 2.0, 1e-9);
  double before = 0.0, inside = 0.0, after = 0.0;
  for (int t = 0; t < 300; ++t) {
    const double n = a.next_arrivals();
    if (t < 100) {
      before += n;
    } else if (t < 150) {
      inside += n;
    } else {
      after += n;
    }
  }
  // ~200 draws at rate 2 outside vs ~2500 inside the 50-slot spike.
  EXPECT_GT(inside, 3.0 * (before + after));

  EXPECT_THROW(FlashCrowdArrivals(-1.0, 2.0, 0, 10, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(FlashCrowdArrivals(1.0, -2.0, 0, 10, Rng(1)),
               std::invalid_argument);
}

// ------------------------------------------------------------ Stability ----

std::vector<double> make_series(std::size_t n, double (*f)(std::size_t)) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = f(i);
  return out;
}

TEST(StabilityTest, DetectsDivergence) {
  const auto series =
      make_series(800, [](std::size_t t) { return 500.0 * static_cast<double>(t); });
  const StabilityReport report = analyze_stability(series);
  EXPECT_EQ(report.verdict, StabilityVerdict::kDivergent);
  EXPECT_NEAR(report.tail_slope, 500.0, 1.0);
}

TEST(StabilityTest, DetectsConvergenceToZero) {
  const auto series = make_series(800, [](std::size_t t) {
    return t < 50 ? 100.0 - 2.0 * static_cast<double>(t) : 0.0;
  });
  const StabilityReport report = analyze_stability(series);
  EXPECT_EQ(report.verdict, StabilityVerdict::kConvergentToZero);
}

TEST(StabilityTest, DetectsBoundedPositive) {
  const auto series = make_series(800, [](std::size_t t) {
    return 5'000.0 + 500.0 * ((t % 16) < 8 ? 1.0 : -1.0);
  });
  const StabilityReport report = analyze_stability(series);
  EXPECT_EQ(report.verdict, StabilityVerdict::kBoundedPositive);
  EXPECT_NEAR(report.tail_mean, 5'000.0, 600.0);
}

TEST(StabilityTest, ValidatesInput) {
  EXPECT_THROW(analyze_stability({1, 2, 3}), std::invalid_argument);
  const auto series = make_series(100, [](std::size_t) { return 1.0; });
  EXPECT_THROW(analyze_stability(series, 0.0), std::invalid_argument);
  EXPECT_THROW(analyze_stability(series, 1.5), std::invalid_argument);
}

TEST(StabilityTest, VerdictToString) {
  EXPECT_STREQ(to_string(StabilityVerdict::kDivergent), "divergent");
  EXPECT_STREQ(to_string(StabilityVerdict::kConvergentToZero),
               "convergent-to-zero");
  EXPECT_STREQ(to_string(StabilityVerdict::kBoundedPositive),
               "bounded-positive");
}

TEST(MaxSustainableDepthTest, FindsBoundary) {
  // arrivals by depth: index = depth.
  const std::vector<double> arrivals{1, 8, 64, 512, 4096, 32'768};
  EXPECT_EQ(max_sustainable_depth(arrivals, 600.0, 1, 5), 3);
  EXPECT_EQ(max_sustainable_depth(arrivals, 1e9, 1, 5), 5);
  EXPECT_EQ(max_sustainable_depth(arrivals, 0.5, 1, 5), 0);  // none: d_min-1
  EXPECT_THROW(max_sustainable_depth(arrivals, 10.0, 5, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace arvis
