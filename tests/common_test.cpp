// Unit tests for src/common: vector math, bounding boxes, RNG, status,
// CSV, statistics, Morton codes and logging.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "common/aabb.hpp"
#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/morton.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/vec3.hpp"

namespace arvis {
namespace {

// ---------------------------------------------------------------- Vec3f ----

TEST(Vec3Test, ArithmeticOperators) {
  const Vec3f a{1, 2, 3};
  const Vec3f b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3f{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3f{3, 3, 3}));
  EXPECT_EQ(a * 2.0F, (Vec3f{2, 4, 6}));
  EXPECT_EQ(2.0F * a, (Vec3f{2, 4, 6}));
  EXPECT_EQ(b / 2.0F, (Vec3f{2, 2.5F, 3}));
  EXPECT_EQ(-a, (Vec3f{-1, -2, -3}));
}

TEST(Vec3Test, DotAndCross) {
  EXPECT_FLOAT_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0F);
  EXPECT_EQ(cross({1, 0, 0}, {0, 1, 0}), (Vec3f{0, 0, 1}));
  EXPECT_EQ(cross({0, 1, 0}, {1, 0, 0}), (Vec3f{0, 0, -1}));
  // Cross product is perpendicular to both inputs.
  const Vec3f c = cross({1, 2, 3}, {-2, 1, 4});
  EXPECT_NEAR(dot(c, {1, 2, 3}), 0.0F, 1e-5F);
  EXPECT_NEAR(dot(c, {-2, 1, 4}), 0.0F, 1e-5F);
}

TEST(Vec3Test, LengthAndDistance) {
  EXPECT_FLOAT_EQ(length({3, 4, 0}), 5.0F);
  EXPECT_FLOAT_EQ(length_squared({3, 4, 0}), 25.0F);
  EXPECT_FLOAT_EQ(distance({1, 1, 1}, {4, 5, 1}), 5.0F);
}

TEST(Vec3Test, NormalizedHandlesZeroVector) {
  const Vec3f unit = normalized({2, 0, 0});
  EXPECT_FLOAT_EQ(unit.x, 1.0F);
  const Vec3f zero = normalized({0, 0, 0});
  EXPECT_EQ(zero, (Vec3f{0, 0, 0}));  // unchanged, no NaN
}

TEST(Vec3Test, MinMaxLerp) {
  EXPECT_EQ(min({1, 5, 3}, {2, 4, 3}), (Vec3f{1, 4, 3}));
  EXPECT_EQ(max({1, 5, 3}, {2, 4, 3}), (Vec3f{2, 5, 3}));
  EXPECT_EQ(lerp({0, 0, 0}, {2, 4, 6}, 0.5F), (Vec3f{1, 2, 3}));
  EXPECT_EQ(lerp({1, 1, 1}, {2, 2, 2}, 0.0F), (Vec3f{1, 1, 1}));
  EXPECT_EQ(lerp({1, 1, 1}, {2, 2, 2}, 1.0F), (Vec3f{2, 2, 2}));
}

TEST(Vec3Test, IndexOperator) {
  const Vec3f v{7, 8, 9};
  EXPECT_FLOAT_EQ(v[0], 7.0F);
  EXPECT_FLOAT_EQ(v[1], 8.0F);
  EXPECT_FLOAT_EQ(v[2], 9.0F);
}

// ----------------------------------------------------------------- Aabb ----

TEST(AabbTest, EmptyByDefault) {
  const Aabb box;
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.extent(), (Vec3f{0, 0, 0}));
  EXPECT_FLOAT_EQ(box.max_extent(), 0.0F);
}

TEST(AabbTest, ExpandWithPoints) {
  Aabb box;
  box.expand(Vec3f{1, 2, 3});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.min_corner, (Vec3f{1, 2, 3}));
  EXPECT_EQ(box.max_corner, (Vec3f{1, 2, 3}));
  box.expand(Vec3f{-1, 5, 0});
  EXPECT_EQ(box.min_corner, (Vec3f{-1, 2, 0}));
  EXPECT_EQ(box.max_corner, (Vec3f{1, 5, 3}));
  EXPECT_EQ(box.extent(), (Vec3f{2, 3, 3}));
  EXPECT_FLOAT_EQ(box.max_extent(), 3.0F);
}

TEST(AabbTest, ExpandWithBoxAndContains) {
  Aabb a;
  a.expand(Vec3f{0, 0, 0});
  a.expand(Vec3f{1, 1, 1});
  Aabb b;
  b.expand(Vec3f{2, 2, 2});
  a.expand(b);
  EXPECT_TRUE(a.contains({1.5F, 1.5F, 1.5F}));
  EXPECT_FALSE(a.contains({2.5F, 0, 0}));
  // Expanding with an empty box is a no-op.
  const Aabb before = a;
  a.expand(Aabb{});
  EXPECT_EQ(a, before);
}

TEST(AabbTest, BoundingCubeIsCubicAndContainsBox) {
  Aabb box;
  box.expand(Vec3f{0, 0, 0});
  box.expand(Vec3f{4, 2, 1});
  const Aabb cube = box.bounding_cube();
  const Vec3f e = cube.extent();
  EXPECT_FLOAT_EQ(e.x, 4.0F);
  EXPECT_FLOAT_EQ(e.y, 4.0F);
  EXPECT_FLOAT_EQ(e.z, 4.0F);
  EXPECT_TRUE(cube.contains(box.min_corner));
  EXPECT_TRUE(cube.contains(box.max_corner));
}

TEST(AabbTest, OfSpan) {
  const std::vector<Vec3f> pts{{0, 0, 0}, {1, -1, 2}, {-3, 4, 0}};
  const Aabb box = Aabb::of(pts);
  EXPECT_EQ(box.min_corner, (Vec3f{-3, -1, 0}));
  EXPECT_EQ(box.max_corner, (Vec3f{1, 4, 2}));
}

// ------------------------------------------------------------------ Rng ----

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  // Different seeds diverge (overwhelmingly likely).
  Rng a2(42);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.01);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 4.0);
}

TEST(RngTest, BelowIsInRangeAndCoversAll) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);  // all residues hit in 1000 draws
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(29);
  RunningStats small, large;
  for (int i = 0; i < 50'000; ++i) {
    small.add(static_cast<double>(rng.poisson(3.0)));
    large.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small.mean(), 3.0, 0.05);
  EXPECT_NEAR(small.variance(), 3.0, 0.15);
  EXPECT_NEAR(large.mean(), 200.0, 0.5);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0U);
  EXPECT_EQ(rng.poisson(-1.0), 0U);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100'000.0, 0.3, 0.01);
  Rng rng2(32);
  EXPECT_FALSE(rng2.bernoulli(0.0));
  EXPECT_TRUE(rng2.bernoulli(1.0));
}

TEST(RngTest, SplitGivesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // Child stream differs from the parent continuation.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (child.next_u64() != parent.next_u64());
  EXPECT_TRUE(any_diff);
}

// --------------------------------------------------------------- Status ----

TEST(StatusTest, OkByDefault) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.to_string(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(9), 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(9), 9);
  EXPECT_THROW((void)r.value(), BadResultAccess);
}

TEST(ResultTest, RejectsOkStatusConstruction) {
  EXPECT_THROW(Result<int>(Status::Ok()), std::logic_error);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

// ------------------------------------------------------------------ CSV ----

TEST(CsvTest, HeaderRequired) {
  EXPECT_THROW(CsvTable(std::vector<std::string>{}), std::invalid_argument);
}

TEST(CsvTest, RowWidthEnforced) {
  CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  t.add_row({1.0, 2.0});
  EXPECT_EQ(t.row_count(), 1U);
}

TEST(CsvTest, SerializesTypes) {
  CsvTable t({"s", "i", "d", "e"});
  t.add_row({std::string("plain"), std::int64_t{42}, 2.5, CsvCell{}});
  EXPECT_EQ(t.to_string(), "s,i,d,e\nplain,42,2.5,\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvTable t({"x"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  t.add_row({std::string("two\nlines")});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(out.find("\"two\nlines\""), std::string::npos);
}

TEST(CsvTest, DoubleRoundTripShortest) {
  EXPECT_EQ(to_csv_field(CsvCell{0.1}), "0.1");
  EXPECT_EQ(to_csv_field(CsvCell{std::int64_t{-7}}), "-7");
}

TEST(CsvTest, PrettyStringAligns) {
  CsvTable t({"name", "v"});
  t.add_row({std::string("x"), std::int64_t{1}});
  t.add_row({std::string("longer"), std::int64_t{22}});
  const std::string pretty = t.to_pretty_string();
  EXPECT_NE(pretty.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(pretty.find("| longer | 22 |"), std::string::npos);
}

TEST(CsvTest, WriteFileRoundTrip) {
  CsvTable t({"a"});
  t.add_row({std::int64_t{1}});
  const std::string path = testing::TempDir() + "/arvis_csv_test.csv";
  ASSERT_TRUE(t.write_file(path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a\n1\n");
}

// ---------------------------------------------------------------- Stats ----

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, first, second;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i < 400 ? first : second).add(x);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), all.count());
  EXPECT_NEAR(first.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(first.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(first.min(), all.min());
  EXPECT_DOUBLE_EQ(first.max(), all.max());
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(9.99);   // bin 9
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(5.5);    // bin 5
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.count_in_bin(0), 1U);
  EXPECT_EQ(h.count_in_bin(9), 1U);
  EXPECT_EQ(h.count_in_bin(5), 1U);
  EXPECT_EQ(h.total(), 5U);
}

TEST(HistogramTest, QuantileApproximatesUniform) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100'000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(HistogramTest, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(ExactQuantileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact_quantile(v, 1.0), 5.0);
  EXPECT_TRUE(std::isnan(exact_quantile({}, 0.5)));
}

TEST(LinearFitTest, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, DegenerateInputsGiveZeroFit) {
  EXPECT_DOUBLE_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  EXPECT_DOUBLE_EQ(fit_linear({1, 1, 1}, {1, 2, 3}).slope, 0.0);  // sxx = 0
}

// --------------------------------------------------------------- Morton ----

TEST(MortonTest, EncodeDecodeRoundTrip) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    const VoxelCoord c{static_cast<std::uint32_t>(rng.below(1U << 21)),
                       static_cast<std::uint32_t>(rng.below(1U << 21)),
                       static_cast<std::uint32_t>(rng.below(1U << 21))};
    EXPECT_EQ(morton_decode(morton_encode(c)), c);
  }
}

TEST(MortonTest, KnownInterleaving) {
  // (1, 0, 0) -> bit 0; (0, 1, 0) -> bit 1; (0, 0, 1) -> bit 2.
  EXPECT_EQ(morton_encode({1, 0, 0}), 1ULL);
  EXPECT_EQ(morton_encode({0, 1, 0}), 2ULL);
  EXPECT_EQ(morton_encode({0, 0, 1}), 4ULL);
  EXPECT_EQ(morton_encode({1, 1, 1}), 7ULL);
  // x=2 -> bit 3.
  EXPECT_EQ(morton_encode({2, 0, 0}), 8ULL);
}

TEST(MortonTest, AncestorKeySharedForSameCell) {
  // Two voxels in the same depth-1 half-cube of a 2-bit grid share ancestor.
  const std::uint64_t a = morton_encode({0, 0, 0});
  const std::uint64_t b = morton_encode({1, 1, 1});
  const std::uint64_t c = morton_encode({2, 0, 0});
  EXPECT_EQ(morton_ancestor_key(a, 2, 1), morton_ancestor_key(b, 2, 1));
  EXPECT_NE(morton_ancestor_key(a, 2, 1), morton_ancestor_key(c, 2, 1));
  // Depth 0 maps everything to the root key 0.
  EXPECT_EQ(morton_ancestor_key(c, 2, 0), 0ULL);
}

TEST(MortonTest, MaxCoordinateRoundTrip) {
  // The 21-bit-per-axis extreme must survive encode/decode (bit 62 is the
  // highest used; bit 63 stays clear).
  const VoxelCoord extreme{(1U << 21) - 1, (1U << 21) - 1, (1U << 21) - 1};
  const std::uint64_t code = morton_encode(extreme);
  EXPECT_EQ(code, 0x7FFFFFFFFFFFFFFFULL);  // 63 bits set, top bit clear
  EXPECT_EQ(morton_decode(code), extreme);
  // Coordinates beyond 21 bits are masked, not wrapped into other axes.
  const VoxelCoord overflow{1U << 21, 0, 0};
  EXPECT_EQ(morton_decode(morton_encode(overflow)), (VoxelCoord{0, 0, 0}));
}

TEST(MortonTest, ChildIndexWalksDown) {
  const VoxelCoord c{3, 1, 2};  // 2-bit grid
  const std::uint64_t code = morton_encode(c);
  // Depth-1 child: top bit of each coordinate -> x=1, y=0, z=1 -> slot 5.
  EXPECT_EQ(morton_child_index(code, 2, 1), 5);
  // Depth-2 child: low bits -> x=1, y=1, z=0 -> slot 3.
  EXPECT_EQ(morton_child_index(code, 2, 2), 3);
}

// ------------------------------------------------------------------ Log ----

TEST(LogTest, LevelFiltersAndSinkReceives) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& msg) {
    captured.emplace_back(level, msg);
  });
  set_log_level(LogLevel::kInfo);
  log_debug("dropped ", 1);
  log_info("kept ", 2);
  log_error("also kept");
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);

  ASSERT_EQ(captured.size(), 2U);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "kept 2");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

TEST(LogTest, OffSilencesEverything) {
  int count = 0;
  set_log_sink([&](LogLevel, const std::string&) { ++count; });
  set_log_level(LogLevel::kOff);
  log_error("not delivered");
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace arvis
