// Unit tests for src/pointcloud: PointCloud container, transforms, voxel
// grids, k-d tree and geometry metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "pointcloud/kdtree.hpp"
#include "pointcloud/metrics.hpp"
#include "pointcloud/point_cloud.hpp"
#include "pointcloud/transforms.hpp"
#include "pointcloud/voxel_grid.hpp"

namespace arvis {
namespace {

PointCloud random_cloud(std::size_t n, std::uint64_t seed,
                        bool with_colors = false) {
  Rng rng(seed);
  PointCloud cloud;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3f p{rng.next_float() * 2 - 1, rng.next_float() * 2 - 1,
                  rng.next_float() * 2 - 1};
    if (with_colors) {
      cloud.add_point(p, {static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256)),
                          static_cast<std::uint8_t>(rng.below(256))});
    } else {
      cloud.add_point(p);
    }
  }
  return cloud;
}

// ----------------------------------------------------------- PointCloud ----

TEST(PointCloudTest, EmptyByDefault) {
  const PointCloud cloud;
  EXPECT_TRUE(cloud.empty());
  EXPECT_EQ(cloud.size(), 0U);
  EXPECT_FALSE(cloud.has_colors());
  EXPECT_TRUE(cloud.bounds().empty());
  EXPECT_EQ(cloud.centroid(), (Vec3f{0, 0, 0}));
}

TEST(PointCloudTest, ColorInvariantEnforcedAtConstruction) {
  std::vector<Vec3f> pts{{0, 0, 0}, {1, 1, 1}};
  std::vector<Color8> colors{{1, 2, 3}};
  EXPECT_THROW(PointCloud(pts, colors), std::invalid_argument);
  colors.push_back({4, 5, 6});
  EXPECT_NO_THROW(PointCloud(pts, colors));
}

TEST(PointCloudTest, MixedAddPointRejected) {
  PointCloud colored;
  colored.add_point({0, 0, 0}, {1, 1, 1});
  EXPECT_THROW(colored.add_point({1, 1, 1}), std::logic_error);

  PointCloud plain;
  plain.add_point({0, 0, 0});
  EXPECT_THROW(plain.add_point({1, 1, 1}, {1, 1, 1}), std::logic_error);
}

TEST(PointCloudTest, AppendMatchingAndMismatched) {
  PointCloud a = random_cloud(10, 1, true);
  const PointCloud b = random_cloud(5, 2, true);
  a.append(b);
  EXPECT_EQ(a.size(), 15U);

  PointCloud plain = random_cloud(3, 3, false);
  EXPECT_THROW(plain.append(b), std::logic_error);
  // Appending to an empty cloud adopts the other's color mode.
  PointCloud empty;
  empty.append(b);
  EXPECT_EQ(empty.size(), 5U);
  EXPECT_TRUE(empty.has_colors());
  // Appending an empty cloud is a no-op.
  PointCloud c = a;
  c.append(PointCloud{});
  EXPECT_EQ(c.size(), a.size());
}

TEST(PointCloudTest, CentroidAndBounds) {
  PointCloud cloud;
  cloud.add_point({0, 0, 0});
  cloud.add_point({2, 4, 6});
  EXPECT_EQ(cloud.centroid(), (Vec3f{1, 2, 3}));
  EXPECT_EQ(cloud.bounds().min_corner, (Vec3f{0, 0, 0}));
  EXPECT_EQ(cloud.bounds().max_corner, (Vec3f{2, 4, 6}));
}

TEST(PointCloudTest, SliceRangeChecksAndColors) {
  const PointCloud cloud = random_cloud(10, 4, true);
  const PointCloud mid = cloud.slice(3, 7);
  EXPECT_EQ(mid.size(), 4U);
  EXPECT_TRUE(mid.has_colors());
  EXPECT_EQ(mid.position(0), cloud.position(3));
  EXPECT_EQ(mid.color(3), cloud.color(6));
  EXPECT_THROW(cloud.slice(7, 3), std::out_of_range);
  EXPECT_THROW(cloud.slice(0, 11), std::out_of_range);
}

// ------------------------------------------------------------ Transforms ----

TEST(TransformsTest, TranslateMovesEveryPoint) {
  PointCloud cloud = random_cloud(20, 5);
  const Vec3f before = cloud.position(7);
  translate(cloud, {1, -2, 3});
  EXPECT_EQ(cloud.position(7), before + (Vec3f{1, -2, 3}));
}

TEST(TransformsTest, ScaleAboutPivot) {
  PointCloud cloud;
  cloud.add_point({2, 0, 0});
  scale(cloud, 3.0F, {1, 0, 0});
  EXPECT_EQ(cloud.position(0), (Vec3f{4, 0, 0}));
}

TEST(TransformsTest, RotationZQuarterTurn) {
  PointCloud cloud;
  cloud.add_point({1, 0, 0});
  rotate(cloud, rotation_z(std::numbers::pi_v<float> / 2));
  EXPECT_NEAR(cloud.position(0).x, 0.0F, 1e-6F);
  EXPECT_NEAR(cloud.position(0).y, 1.0F, 1e-6F);
}

TEST(TransformsTest, RotationPreservesLengths) {
  const Mat3 r = rotation_about_axis({1, 2, 3}, 0.7F);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const Vec3f v{rng.next_float(), rng.next_float(), rng.next_float()};
    EXPECT_NEAR(length(r.apply(v)), length(v), 1e-5F);
  }
}

TEST(TransformsTest, MatrixProductComposesRotations) {
  const Mat3 a = rotation_z(0.3F);
  const Mat3 b = rotation_x(0.5F);
  const Vec3f v{0.2F, -0.4F, 0.9F};
  const Vec3f via_product = (a * b).apply(v);
  const Vec3f via_sequence = a.apply(b.apply(v));
  EXPECT_NEAR(via_product.x, via_sequence.x, 1e-6F);
  EXPECT_NEAR(via_product.y, via_sequence.y, 1e-6F);
  EXPECT_NEAR(via_product.z, via_sequence.z, 1e-6F);
}

TEST(TransformsTest, CropKeepsInsidePointsWithColors) {
  PointCloud cloud;
  cloud.add_point({0.5F, 0.5F, 0.5F}, {1, 1, 1});
  cloud.add_point({2, 2, 2}, {2, 2, 2});
  Aabb box;
  box.expand(Vec3f{0, 0, 0});
  box.expand(Vec3f{1, 1, 1});
  const PointCloud cropped = crop(cloud, box);
  ASSERT_EQ(cropped.size(), 1U);
  EXPECT_EQ(cropped.color(0), (Color8{1, 1, 1}));
}

TEST(TransformsTest, FitToBoxCentersAndScales) {
  PointCloud cloud = random_cloud(100, 7);
  Aabb target;
  target.expand(Vec3f{10, 10, 10});
  target.expand(Vec3f{12, 12, 12});
  fit_to_box(cloud, target);
  const Aabb result = cloud.bounds();
  EXPECT_LE(result.max_extent(), target.max_extent() * 1.001F);
  const Vec3f center = result.center();
  EXPECT_NEAR(center.x, 11.0F, 0.1F);
  EXPECT_NEAR(center.y, 11.0F, 0.1F);
  EXPECT_NEAR(center.z, 11.0F, 0.1F);
}

// ------------------------------------------------------------- VoxelGrid ----

TEST(VoxelGridTest, ConstructionValidation) {
  Aabb box;
  box.expand(Vec3f{0, 0, 0});
  box.expand(Vec3f{1, 1, 1});
  EXPECT_THROW(VoxelGrid(box, 0), std::invalid_argument);
  EXPECT_THROW(VoxelGrid(box, 22), std::invalid_argument);
  EXPECT_THROW(VoxelGrid(Aabb{}, 8), std::invalid_argument);
  const VoxelGrid grid(box, 4);
  EXPECT_EQ(grid.resolution(), 16U);
  EXPECT_FLOAT_EQ(grid.voxel_size(), 1.0F / 16.0F);
}

TEST(VoxelGridTest, QuantizeRoundTripsThroughCenter) {
  Aabb box;
  box.expand(Vec3f{0, 0, 0});
  box.expand(Vec3f{8, 8, 8});
  const VoxelGrid grid(box, 3);  // 8 voxels of size 1
  const VoxelCoord c = grid.quantize({3.5F, 0.5F, 7.5F});
  EXPECT_EQ(c, (VoxelCoord{3, 0, 7}));
  const Vec3f center = grid.voxel_center(c);
  EXPECT_EQ(grid.quantize(center), c);
}

TEST(VoxelGridTest, QuantizeClampsOutOfRange) {
  Aabb box;
  box.expand(Vec3f{0, 0, 0});
  box.expand(Vec3f{1, 1, 1});
  const VoxelGrid grid(box, 2);
  EXPECT_EQ(grid.quantize({-5, -5, -5}), (VoxelCoord{0, 0, 0}));
  EXPECT_EQ(grid.quantize({5, 5, 5}), (VoxelCoord{3, 3, 3}));
}

TEST(VoxelizeTest, CodesSortedUniqueAndCountsMatch) {
  const PointCloud cloud = random_cloud(5000, 8, true);
  const VoxelizedCloud voxels = voxelize(cloud, 6);
  ASSERT_FALSE(voxels.codes.empty());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < voxels.codes.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(voxels.codes[i - 1], voxels.codes[i]);
    }
    total += voxels.point_counts[i];
  }
  EXPECT_EQ(total, cloud.size());
  EXPECT_EQ(voxels.colors.size(), voxels.codes.size());
}

TEST(VoxelizeTest, SinglePointPerVoxelAtHighResolution) {
  // Two far-apart points never share a voxel.
  PointCloud cloud;
  cloud.add_point({0, 0, 0});
  cloud.add_point({1, 1, 1});
  const VoxelizedCloud voxels = voxelize(cloud, 8);
  EXPECT_EQ(voxels.occupied_count(), 2U);
}

TEST(VoxelizeTest, AveragesColors) {
  PointCloud cloud;
  cloud.add_point({0.1F, 0.1F, 0.1F}, {100, 0, 0});
  cloud.add_point({0.11F, 0.11F, 0.11F}, {200, 0, 0});
  cloud.add_point({10, 10, 10}, {50, 50, 50});  // separate voxel
  const VoxelizedCloud voxels = voxelize(cloud, 4);
  ASSERT_EQ(voxels.occupied_count(), 2U);
  // The co-located pair averages to 150.
  bool found = false;
  for (std::size_t i = 0; i < voxels.codes.size(); ++i) {
    if (voxels.point_counts[i] == 2) {
      EXPECT_EQ(voxels.colors[i].r, 150);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VoxelizeTest, EmptyCloudRejected) {
  EXPECT_THROW(voxelize(PointCloud{}, 4), std::invalid_argument);
}

TEST(VoxelDownsampleTest, ReducesAndPreservesCentroids) {
  PointCloud cloud;
  // Four points in one voxel, one far away.
  cloud.add_point({0.1F, 0.1F, 0.1F});
  cloud.add_point({0.2F, 0.1F, 0.1F});
  cloud.add_point({0.1F, 0.2F, 0.1F});
  cloud.add_point({0.2F, 0.2F, 0.1F});
  cloud.add_point({5, 5, 5});
  const PointCloud down = voxel_downsample(cloud, 1.0F);
  ASSERT_EQ(down.size(), 2U);
  // One output point is the centroid of the cluster.
  bool found = false;
  for (const Vec3f& p : down.positions()) {
    if (distance(p, {0.15F, 0.15F, 0.1F}) < 1e-5F) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(VoxelDownsampleTest, InvalidVoxelSizeRejected) {
  EXPECT_THROW(voxel_downsample(random_cloud(5, 9), 0.0F),
               std::invalid_argument);
}

TEST(VoxelDownsampleTest, DeterministicOrder) {
  const PointCloud cloud = random_cloud(2000, 10, true);
  const PointCloud a = voxel_downsample(cloud, 0.25F);
  const PointCloud b = voxel_downsample(cloud, 0.25F);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.position(i), b.position(i));
  }
}

// ----------------------------------------------------------------- KdTree ----

TEST(KdTreeTest, EmptyTree) {
  const KdTree tree(std::span<const Vec3f>{});
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.nearest({0, 0, 0}).index, KdTree::Neighbor::kInvalid);
}

TEST(KdTreeTest, NearestMatchesBruteForce) {
  const PointCloud cloud = random_cloud(500, 11);
  const KdTree tree(cloud.positions());
  Rng rng(12);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3f q{rng.next_float() * 2 - 1, rng.next_float() * 2 - 1,
                  rng.next_float() * 2 - 1};
    const auto nn = tree.nearest(q);
    float best = std::numeric_limits<float>::max();
    for (const Vec3f& p : cloud.positions()) {
      best = std::min(best, distance_squared(p, q));
    }
    EXPECT_FLOAT_EQ(nn.distance_squared, best);
  }
}

TEST(KdTreeTest, RadiusSearchMatchesBruteForce) {
  const PointCloud cloud = random_cloud(300, 13);
  const KdTree tree(cloud.positions());
  const Vec3f q{0.1F, -0.2F, 0.3F};
  const float radius = 0.4F;
  auto found = tree.radius_search(q, radius);
  std::size_t expected = 0;
  for (const Vec3f& p : cloud.positions()) {
    if (distance(p, q) <= radius) ++expected;
  }
  EXPECT_EQ(found.size(), expected);
  for (std::uint32_t idx : found) {
    EXPECT_LE(distance(cloud.position(idx), q), radius * 1.0001F);
  }
}

TEST(KdTreeTest, KNearestSortedAndCorrect) {
  const PointCloud cloud = random_cloud(400, 14);
  const KdTree tree(cloud.positions());
  const Vec3f q{0, 0, 0};
  const auto knn = tree.k_nearest(q, 10);
  ASSERT_EQ(knn.size(), 10U);
  for (std::size_t i = 1; i < knn.size(); ++i) {
    EXPECT_LE(knn[i - 1].distance_squared, knn[i].distance_squared);
  }
  // Brute-force 10th distance matches.
  std::vector<float> dists;
  for (const Vec3f& p : cloud.positions()) {
    dists.push_back(distance_squared(p, q));
  }
  std::sort(dists.begin(), dists.end());
  EXPECT_FLOAT_EQ(knn.back().distance_squared, dists[9]);
}

TEST(KdTreeTest, KNearestClampsToSize) {
  const PointCloud cloud = random_cloud(5, 15);
  const KdTree tree(cloud.positions());
  EXPECT_EQ(tree.k_nearest({0, 0, 0}, 10).size(), 5U);
  EXPECT_TRUE(tree.k_nearest({0, 0, 0}, 0).empty());
}

// ---------------------------------------------------------------- Metrics ----

TEST(MetricsTest, IdenticalCloudsHaveZeroDistance) {
  const PointCloud cloud = random_cloud(200, 16);
  const DistanceStats stats = point_to_point_distance(cloud, cloud);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.rms, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  const GeometryMetrics m = compare_geometry(cloud, cloud);
  EXPECT_TRUE(std::isinf(m.psnr_db));
}

TEST(MetricsTest, KnownOffsetDistance) {
  PointCloud a, b;
  a.add_point({0, 0, 0});
  a.add_point({1, 0, 0});
  b.add_point({0, 0.5F, 0});
  b.add_point({1, 0.5F, 0});
  const DistanceStats stats = point_to_point_distance(a, b);
  EXPECT_NEAR(stats.mean, 0.5, 1e-6);
  EXPECT_NEAR(stats.rms, 0.5, 1e-6);
  EXPECT_NEAR(stats.max, 0.5, 1e-6);
}

TEST(MetricsTest, EmptyCloudRejected) {
  const PointCloud cloud = random_cloud(10, 17);
  EXPECT_THROW(point_to_point_distance(cloud, PointCloud{}),
               std::invalid_argument);
  EXPECT_THROW(compare_geometry(PointCloud{}, cloud), std::invalid_argument);
}

TEST(MetricsTest, PsnrDecreasesWithNoise) {
  const PointCloud reference = random_cloud(2000, 18);
  Rng rng(19);
  auto noisy = [&](float sigma) {
    PointCloud out;
    for (const Vec3f& p : reference.positions()) {
      out.add_point(p + Vec3f{static_cast<float>(rng.normal(0, sigma)),
                              static_cast<float>(rng.normal(0, sigma)),
                              static_cast<float>(rng.normal(0, sigma))});
    }
    return out;
  };
  const double psnr_small = compare_geometry(reference, noisy(0.001F)).psnr_db;
  const double psnr_large = compare_geometry(reference, noisy(0.05F)).psnr_db;
  EXPECT_GT(psnr_small, psnr_large);
  EXPECT_GT(psnr_large, 0.0);
}

TEST(MetricsTest, HausdorffIsSymmetricMax) {
  PointCloud a, b;
  a.add_point({0, 0, 0});
  b.add_point({0, 0, 0});
  b.add_point({3, 0, 0});  // far outlier only in b
  const GeometryMetrics m = compare_geometry(a, b);
  EXPECT_NEAR(m.hausdorff, 3.0, 1e-6);
  EXPECT_NEAR(m.forward.max, 0.0, 1e-6);
  EXPECT_NEAR(m.backward.max, 3.0, 1e-6);
}

TEST(MetricsTest, PointToPlaneBelowPointToPointOnPlanarData) {
  // Reconstruction offset tangentially along a plane: point-to-plane error
  // should be ~0 while point-to-point is not.
  PointCloud plane, shifted;
  Rng rng(20);
  for (int i = 0; i < 500; ++i) {
    const float x = rng.next_float() * 4 - 2;
    const float y = rng.next_float() * 4 - 2;
    plane.add_point({x, y, 0});
    shifted.add_point({x + 0.05F, y, 0});  // tangential shift
  }
  const double p2pl = point_to_plane_mse(shifted, plane);
  const DistanceStats p2p = point_to_point_distance(shifted, plane);
  EXPECT_LT(p2pl, p2p.rms * p2p.rms * 0.5);
}

TEST(MetricsTest, PointToPlaneValidatesArguments) {
  const PointCloud cloud = random_cloud(50, 21);
  EXPECT_THROW(point_to_plane_mse(cloud, cloud, 2), std::invalid_argument);
}

TEST(MetricsTest, ColorPsnrNanWithoutColors) {
  const PointCloud plain = random_cloud(10, 22, false);
  const PointCloud colored = random_cloud(10, 23, true);
  EXPECT_TRUE(std::isnan(color_psnr_db(plain, colored)));
}

TEST(MetricsTest, ColorPsnrInfiniteForIdenticalColors) {
  const PointCloud colored = random_cloud(100, 24, true);
  EXPECT_TRUE(std::isinf(color_psnr_db(colored, colored)));
}

TEST(MetricsTest, ColorPsnrDropsWithColorNoise) {
  const PointCloud reference = random_cloud(500, 25, true);
  PointCloud degraded;
  Rng rng(26);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    Color8 c = reference.color(i);
    c.g = static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(c.g) +
                       static_cast<int>(rng.uniform_int(-60, 60)),
                   0, 255));
    degraded.add_point(reference.position(i), c);
  }
  const double psnr = color_psnr_db(reference, degraded);
  EXPECT_GT(psnr, 5.0);
  EXPECT_LT(psnr, 40.0);
}

}  // namespace
}  // namespace arvis
