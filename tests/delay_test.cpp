// Tests for workload maps, device profiles and service processes.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "datasets/catalog.hpp"
#include "delay/device_profile.hpp"
#include "delay/service_process.hpp"
#include "delay/workload.hpp"
#include "octree/occupancy_codec.hpp"
#include "octree/octree.hpp"

namespace arvis {
namespace {

// ------------------------------------------------------------- Workload ----

TEST(PointWorkloadTest, LookupAndValidation) {
  const PointWorkload w({1, 8, 64, 500});
  EXPECT_DOUBLE_EQ(w.arrivals(2), 64.0);
  EXPECT_DOUBLE_EQ(w.arrivals(9), 500.0);  // clamps
  EXPECT_THROW(PointWorkload({}), std::invalid_argument);
  EXPECT_THROW(PointWorkload({5, 3}), std::invalid_argument);  // decreasing
}

TEST(ByteWorkloadTest, LookupAndValidation) {
  const ByteWorkload w({0, 1, 9, 73});
  EXPECT_DOUBLE_EQ(w.arrivals(3), 73.0);
  EXPECT_THROW(ByteWorkload({1, 0}), std::invalid_argument);
}

TEST(GeometricWorkloadTest, GrowthLaw) {
  const GeometricWorkload w(5, 1000.0, 4.0);
  EXPECT_DOUBLE_EQ(w.arrivals(5), 1000.0);
  EXPECT_DOUBLE_EQ(w.arrivals(7), 16'000.0);
  EXPECT_DOUBLE_EQ(w.arrivals(4), 1000.0);  // below d_min clamps to base
  EXPECT_THROW(GeometricWorkload(5, 0.0, 4.0), std::invalid_argument);
  EXPECT_THROW(GeometricWorkload(5, 1.0, 0.5), std::invalid_argument);
}

TEST(FrameWorkloadTest, MatchesOctreeStatistics) {
  const auto source = open_test_subject(41);
  const Octree tree(source->frame(0), 7);
  const FrameWorkload w = compute_frame_workload(tree);
  EXPECT_EQ(w.max_depth, 7);
  for (int d = 0; d <= 7; ++d) {
    EXPECT_DOUBLE_EQ(w.points(d), static_cast<double>(tree.occupied_count(d)));
  }
  for (int d = 1; d <= 7; ++d) {
    EXPECT_DOUBLE_EQ(w.bytes(d),
                     static_cast<double>(encode_occupancy(tree, d).byte_size()));
  }
  EXPECT_DOUBLE_EQ(w.bytes(0), 0.0);
}

// -------------------------------------------------------- DeviceProfile ----

TEST(DeviceProfileTest, RenderTimeAffine) {
  const DeviceProfile p{"test", 1000.0, 5.0};
  EXPECT_DOUBLE_EQ(p.render_ms(0), 5.0);
  EXPECT_DOUBLE_EQ(p.render_ms(10'000), 15.0);
}

TEST(DeviceProfileTest, ServicePerSlotNetOfSetup) {
  const DeviceProfile p{"test", 1000.0, 5.0};
  EXPECT_DOUBLE_EQ(p.service_points_per_slot(33.3), (33.3 - 5.0) * 1000.0);
  EXPECT_DOUBLE_EQ(p.service_points_per_slot(4.0), 0.0);  // setup exceeds slot
}

TEST(DeviceProfileTest, BuiltinsOrderedByThroughput) {
  const auto profiles = builtin_device_profiles();
  ASSERT_EQ(profiles.size(), 4U);
  for (std::size_t i = 1; i < profiles.size(); ++i) {
    EXPECT_GT(profiles[i].points_per_ms, profiles[i - 1].points_per_ms);
  }
  EXPECT_EQ(device_profile("phone-low").name, "phone-low");
  EXPECT_THROW(device_profile("smartwatch"), std::invalid_argument);
}

// ------------------------------------------------------ ServiceProcess ----

TEST(ConstantServiceTest, FixedRate) {
  ConstantService service(250.0);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(service.next_service(), 250.0);
  EXPECT_DOUBLE_EQ(service.mean_rate(), 250.0);
  EXPECT_THROW(ConstantService(-1.0), std::invalid_argument);
}

TEST(JitteredServiceTest, MeanPreservedAndNonNegative) {
  JitteredService service(1000.0, 0.2, Rng(42));
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) {
    const double s = service.next_service();
    EXPECT_GE(s, 0.0);
    stats.add(s);
  }
  EXPECT_NEAR(stats.mean(), 1000.0, 10.0);
  EXPECT_NEAR(stats.stddev(), 200.0, 10.0);
  EXPECT_THROW(JitteredService(100.0, 1.5, Rng(1)), std::invalid_argument);
}

TEST(MarkovServiceTest, MeanMatchesStationaryDistribution) {
  // p_fs = 0.1, p_sf = 0.3 -> pi_fast = 0.75.
  MarkovModulatedService service(1000.0, 200.0, 0.1, 0.3, Rng(43));
  EXPECT_NEAR(service.mean_rate(), 0.75 * 1000.0 + 0.25 * 200.0, 1e-9);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(service.next_service());
  EXPECT_NEAR(stats.mean(), service.mean_rate(), 10.0);
}

TEST(MarkovServiceTest, OnlyTwoRatesEmitted) {
  MarkovModulatedService service(800.0, 100.0, 0.5, 0.5, Rng(44));
  for (int i = 0; i < 100; ++i) {
    const double s = service.next_service();
    EXPECT_TRUE(s == 800.0 || s == 100.0);
  }
  EXPECT_THROW(MarkovModulatedService(100.0, 200.0, 0.1, 0.1, Rng(1)),
               std::invalid_argument);
}

TEST(TraceServiceTest, CyclesThroughTrace) {
  TraceService service({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(service.next_service(), 10.0);
  EXPECT_DOUBLE_EQ(service.next_service(), 20.0);
  EXPECT_DOUBLE_EQ(service.next_service(), 30.0);
  EXPECT_DOUBLE_EQ(service.next_service(), 10.0);  // wraps
  EXPECT_DOUBLE_EQ(service.mean_rate(), 20.0);
  EXPECT_THROW(TraceService({}), std::invalid_argument);
  EXPECT_THROW(TraceService({1.0, -2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace arvis
