// Tests for the observability layer (serving/telemetry + common/check):
// SLO window math (blip vs breach over fast/slow windows, cumulative-counter
// deltas, worst-over-window gauges, per-tier isolation, empty-denominator
// semantics), flight-recorder ring wraparound, black-box JSON parse-back,
// Prometheus text export structure, registry merge exactness (sharded ==
// single-stream), the DCHECK-failure black-box dump (death test), and an
// end-to-end replay under deliberately tight SLOs producing report entries,
// counters, an auto-dumped black box and a live-stats file.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/driver/replay.hpp"
#include "serving/driver/trace.hpp"
#include "serving/telemetry/export.hpp"
#include "serving/telemetry/flight_recorder.hpp"
#include "serving/telemetry/registry.hpp"
#include "serving/telemetry/slo.hpp"

namespace arvis {
namespace {

// ------------------------------------------------------ SLO validation ----

SloConfig one_spec(SloMetric metric, double threshold, int tier = -1) {
  SloConfig config;
  config.specs = {{"spec", metric, threshold, tier}};
  return config;
}

TEST(SloValidationTest, RejectsMalformedConfigs) {
  SloConfig config = one_spec(SloMetric::kAcceptRatio, 0.9);
  validate_slo(config, "test");  // baseline is fine

  SloConfig unnamed = config;
  unnamed.specs[0].name.clear();
  EXPECT_THROW(validate_slo(unnamed, "test"), std::invalid_argument);

  SloConfig negative = config;
  negative.specs[0].threshold = -0.1;
  EXPECT_THROW(validate_slo(negative, "test"), std::invalid_argument);

  SloConfig tier_high = config;
  tier_high.specs[0].tier = static_cast<int>(kSloTiers);
  EXPECT_THROW(validate_slo(tier_high, "test"), std::invalid_argument);
  SloConfig tier_low = config;
  tier_low.specs[0].tier = -2;
  EXPECT_THROW(validate_slo(tier_low, "test"), std::invalid_argument);

  SloConfig no_fast = config;
  no_fast.windows.fast = 0;
  EXPECT_THROW(validate_slo(no_fast, "test"), std::invalid_argument);
  SloConfig inverted = config;
  inverted.windows = {4, 2};  // slow < fast
  EXPECT_THROW(validate_slo(inverted, "test"), std::invalid_argument);

  // The monitor validates on construction too.
  EXPECT_THROW(SloMonitor{unnamed}, std::invalid_argument);
}

// ----------------------------------------------------- SLO window math ----

/// An observation carrying only total-tier admission counters (cumulative).
SloObservation admission_obs(std::size_t slot, std::uint64_t accepted,
                             std::uint64_t rejected) {
  SloObservation obs;
  obs.slot = slot;
  obs.total.accepted = accepted;
  obs.total.rejected = rejected;
  return obs;
}

TEST(SloMonitorTest, AcceptRatioWalksOkBlipBreachAndRecovers) {
  SloConfig config = one_spec(SloMetric::kAcceptRatio, 0.9);
  config.specs[0].name = "accept";
  config.windows = {/*fast=*/2, /*slow=*/4};
  SloMonitor monitor(config);

  // Five clean snapshots: ratio 1.0 everywhere, no transitions.
  std::uint64_t accepted = 0;
  for (std::size_t s = 1; s <= 5; ++s) {
    accepted += 10;
    EXPECT_TRUE(monitor.observe(admission_obs(60 * s, accepted, 0)).empty());
    EXPECT_EQ(monitor.state(0), SloState::kOk);
  }

  // A small burst of rejects: the fast window (11 accepted, 2 rejected ->
  // 0.846) violates, the slow window (31/33 -> 0.939) absorbs it: blip.
  auto t = monitor.observe(admission_obs(360, 51, 2));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].from, SloState::kOk);
  EXPECT_EQ(t[0].to, SloState::kBlip);
  EXPECT_EQ(t[0].slot, 360U);
  EXPECT_NEAR(t[0].fast_value, 11.0 / 13.0, 1e-12);
  EXPECT_NEAR(t[0].slow_value, 31.0 / 33.0, 1e-12);
  EXPECT_EQ(t[0].threshold, 0.9);

  // Still inside the blip (fast 1/3, slow 21/23): state holds, no
  // transition recorded.
  EXPECT_TRUE(monitor.observe(admission_obs(420, 51, 2)).empty());
  EXPECT_EQ(monitor.state(0), SloState::kBlip);

  // The rejects keep coming until the slow window violates too (fast 0/8,
  // slow 11/21): sustained degradation, blip escalates to breach.
  t = monitor.observe(admission_obs(480, 51, 10));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].from, SloState::kBlip);
  EXPECT_EQ(t[0].to, SloState::kBreach);
  EXPECT_NEAR(t[0].fast_value, 0.0, 1e-12);
  EXPECT_NEAR(t[0].slow_value, 11.0 / 21.0, 1e-12);

  // A flood of accepts clears both windows at once: straight back to ok.
  t = monitor.observe(admission_obs(540, 151, 10));
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].from, SloState::kBreach);
  EXPECT_EQ(t[0].to, SloState::kOk);

  // No new traffic at all: an empty denominator passes (ratio 1.0), it is
  // not a violation.
  EXPECT_TRUE(monitor.observe(admission_obs(600, 151, 10)).empty());
  EXPECT_EQ(monitor.state(0), SloState::kOk);

  EXPECT_EQ(monitor.breach_count(), 1U);
  EXPECT_EQ(monitor.blip_count(), 1U);
  EXPECT_EQ(monitor.transitions().size(), 3U);

  // The transition table renders one row per transition.
  const CsvTable table =
      slo_transitions_table(config.specs, monitor.transitions());
  ASSERT_EQ(table.row_count(), 3U);
  EXPECT_EQ(std::get<std::string>(table.at(0, 1)), "accept");
  EXPECT_EQ(std::get<std::string>(table.at(0, 3)), "blip");
  EXPECT_EQ(std::get<std::string>(table.at(1, 3)), "breach");
  EXPECT_EQ(std::get<std::string>(table.at(2, 3)), "ok");
}

TEST(SloMonitorTest, GaugeTakesWorstOverWindowAndStartupBreachesDirectly) {
  SloConfig config = one_spec(SloMetric::kP95QueueDelay, 5.0);
  config.windows = {/*fast=*/1, /*slow=*/3};
  SloMonitor monitor(config);

  // First snapshot already over the ceiling: both windows see the same
  // single observation, so the spec goes straight to breach — exactly what
  // a smoke test with a deliberately tight SLO wants.
  SloObservation obs;
  obs.slot = 10;
  obs.total.p95_delay_slots = 10.0;
  auto t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].from, SloState::kOk);
  EXPECT_EQ(t[0].to, SloState::kBreach);

  // The delay clears, but the slow window still remembers the worst value
  // (max over its observations): draining incident tail, a blip.
  obs.slot = 20;
  obs.total.p95_delay_slots = 0.0;
  t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kBlip);
  EXPECT_NEAR(t[0].slow_value, 10.0, 1e-12);

  // Still in the slow window one snapshot later: blip holds.
  obs.slot = 30;
  EXPECT_TRUE(monitor.observe(obs).empty());
  EXPECT_EQ(monitor.state(0), SloState::kBlip);

  // The bad observation ages out of the slow window: recovered.
  obs.slot = 40;
  t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kOk);
}

TEST(SloMonitorTest, QualityFloorPassesUntilAnySessionDelivers) {
  SloConfig config = one_spec(SloMetric::kQualityFloor, 0.5);
  config.windows = {1, 1};
  SloMonitor monitor(config);

  // No session has delivered a step yet: passing, not a violation.
  SloObservation obs;
  obs.slot = 10;
  EXPECT_TRUE(monitor.observe(obs).empty());
  EXPECT_EQ(monitor.state(0), SloState::kOk);

  obs.slot = 20;
  obs.total.has_quality = true;
  obs.total.min_quality = 0.2;  // under the floor
  auto t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kBreach);

  obs.slot = 30;
  obs.total.min_quality = 0.8;
  t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kOk);
}

TEST(SloMonitorTest, TierSpecReadsItsTierNotTheTotal) {
  SloConfig config = one_spec(SloMetric::kAcceptRatio, 0.9, /*tier=*/2);
  config.windows = {1, 1};
  SloMonitor monitor(config);

  // Total traffic is healthy; the premium tier is not. The tier spec must
  // see only its tier.
  SloObservation obs;
  obs.slot = 10;
  obs.total.accepted = 100;
  obs.total.rejected = 5;
  obs.tier[2].accepted = 1;
  obs.tier[2].rejected = 5;
  auto t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kBreach);
  EXPECT_NEAR(t[0].fast_value, 1.0 / 6.0, 1e-12);
}

TEST(SloMonitorTest, SpillRatioReadsClusterPlacementCounters) {
  SloConfig config = one_spec(SloMetric::kSpillRatio, 0.25);
  config.windows = {1, 1};
  SloMonitor monitor(config);

  SloObservation obs;
  obs.slot = 10;
  obs.placed = 6;
  obs.spills = 3;
  obs.placement_rejects = 1;
  auto t = monitor.observe(obs);  // 3 / 10 over the window
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kBreach);
  EXPECT_NEAR(t[0].fast_value, 0.3, 1e-12);

  // No placement activity in the next window: passing.
  obs.slot = 20;
  t = monitor.observe(obs);
  ASSERT_EQ(t.size(), 1U);
  EXPECT_EQ(t[0].to, SloState::kOk);
}

TEST(SloSampleTest, MergeFoldsWorstLinkView) {
  SloTierSample into;
  into.accepted = 10;
  into.active = 3;
  into.p95_delay_slots = 2.0;

  SloTierSample from;
  from.accepted = 5;
  from.rejected = 1;
  from.active = 2;
  from.p95_delay_slots = 7.0;
  from.min_quality = 0.4;
  from.has_quality = true;

  merge_slo_sample(into, from);
  EXPECT_EQ(into.accepted, 15U);
  EXPECT_EQ(into.rejected, 1U);
  EXPECT_EQ(into.active, 5U);
  EXPECT_EQ(into.p95_delay_slots, 7.0);  // worst link
  EXPECT_TRUE(into.has_quality);
  EXPECT_EQ(into.min_quality, 0.4);

  // A link with no quality data yet must not drag the floor to zero.
  SloTierSample silent;
  merge_slo_sample(into, silent);
  EXPECT_TRUE(into.has_quality);
  EXPECT_EQ(into.min_quality, 0.4);
}

// ------------------------------------------------------ flight recorder ----

TEST(FlightRecorderTest, RingWrapKeepsTheNewestEvents) {
  FlightRecorder recorder({/*capacity=*/8});
  EXPECT_EQ(recorder.capacity(), 8U);
  EXPECT_EQ(recorder.size(), 0U);

  for (std::size_t i = 0; i < 20; ++i) {
    recorder.record(FlightEventKind::kAdmit, /*slot=*/i, /*tid=*/0,
                    /*a=*/static_cast<double>(i));
  }
  EXPECT_EQ(recorder.size(), 8U);
  EXPECT_EQ(recorder.recorded_total(), 20U);
  EXPECT_EQ(recorder.dropped(), 12U);
  // Oldest-first iteration over the held window: seq 13..20.
  EXPECT_EQ(recorder.at(0).seq, 13U);
  EXPECT_EQ(recorder.at(0).a, 12.0);  // the 13th record carried a = 12
  EXPECT_EQ(recorder.at(7).seq, 20U);
  EXPECT_EQ(recorder.at(7).slot, 19U);
}

TEST(FlightRecorderTest, ZeroCapacityThrows) {
  EXPECT_THROW(FlightRecorder({0}), std::invalid_argument);
}

// ------------------------------------------------------------ black box ----

/// Structural JSON check: balanced braces/brackets outside strings, escape
/// handling, non-empty. Not a full parser — the end-to-end pipeline also
/// feeds real dumps through python3 -m json.tool in CI.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string && !text.empty();
}

TEST(BlackBoxTest, JsonParseBackCarriesEventsRegistryAndConfig) {
  FlightRecorder recorder({4});
  recorder.record(FlightEventKind::kAdmit, 7, 1, 42.0, 3.0);
  recorder.record(FlightEventKind::kSloBreach, 9, 999, 0.0, 0.5);

  TelemetryRegistry registry;
  registry.counter("link0/slots").add(7);
  registry.histogram("h").record(2.0);

  const std::string json =
      black_box_json(recorder, &registry, "{\"run\":\"test\"}");
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"admit\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"slo_breach\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":42"), std::string::npos);
  EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
  EXPECT_NE(json.find("\"recorded_total\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(json.find("\"config\":{\"run\":\"test\"}"), std::string::npos);
  EXPECT_NE(json.find("link0/slots"), std::string::npos);

  // Omitted registry and config render as JSON null, not broken syntax.
  const std::string bare = black_box_json(recorder, nullptr, "");
  EXPECT_TRUE(balanced_json(bare));
  EXPECT_NE(bare.find("\"config\":null"), std::string::npos);
  EXPECT_NE(bare.find("\"registry\":null"), std::string::npos);
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(BlackBoxTest, WriteRoundTripsThroughDisk) {
  FlightRecorder recorder({4});
  recorder.record(FlightEventKind::kClose, 3, 0, 5.0, 11.0);

  const std::string path = ::testing::TempDir() + "/box.json";
  ASSERT_TRUE(write_black_box(path, recorder, nullptr, "").ok());
  EXPECT_EQ(read_file(path), black_box_json(recorder, nullptr, ""));

  EXPECT_FALSE(
      write_black_box("/nonexistent-dir/box.json", recorder, nullptr, "")
          .ok());
}

TEST(BlackBoxDeathTest, DcheckFailureLeavesAParseableDump) {
  if (!dchecks_enabled()) {
    GTEST_SKIP() << "ARVIS_DCHECK compiled out in this build";
  }
  const std::string path = ::testing::TempDir() + "/dcheck_box.json";
  std::remove(path.c_str());

  // Arming happens inside the death statement: EXPECT_DEATH runs it in a
  // child process, which dumps the black box on its way into abort(). The
  // parent then reads what the child left behind.
  EXPECT_DEATH(
      {
        FlightRecorder recorder({16});
        BlackBoxArming arming;
        arming.path = path;
        arming.recorder = &recorder;
        arming.signal_handlers = false;
        arm_black_box(arming);
        recorder.record(FlightEventKind::kSchedFallback, 99, 1, 2.0, 3.0);
        ARVIS_DCHECK_MSG(false, "observability death test");
      },
      "observability death test");

  const std::string dump = read_file(path);
  ASSERT_FALSE(dump.empty()) << "no black box at " << path;
  EXPECT_TRUE(balanced_json(dump));
  EXPECT_NE(dump.find("\"kind\":\"sched_fallback\""), std::string::npos);
  EXPECT_NE(dump.find("\"slot\":99"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------- Prometheus export ----

TEST(PrometheusTest, CountersAndHistogramsRenderInTextFormat) {
  TelemetryRegistry registry;
  registry.counter("link0/slots").add(7);
  TelemetryHistogram& h = registry.histogram("svc/active");
  h.record(2.0);
  h.record(2.0);
  h.record(2.0);

  const std::string text = prometheus_text(registry);
  // Names gain the arvis_ prefix; '/' sanitizes to '_'.
  EXPECT_NE(text.find("# TYPE arvis_link0_slots counter\n"
                      "arvis_link0_slots 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE arvis_svc_active histogram\n"),
            std::string::npos);
  // Cumulative buckets: +Inf always present and equal to _count; _sum is
  // the exact sum of recorded values.
  EXPECT_NE(text.find("arvis_svc_active_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("arvis_svc_active_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("arvis_svc_active_sum 6\n"), std::string::npos);

  // An empty registry renders as empty text, not malformed lines.
  TelemetryRegistry empty;
  EXPECT_TRUE(prometheus_text(empty).empty());
}

TEST(PrometheusTest, BucketCountsAreCumulative) {
  TelemetryRegistry registry;
  TelemetryHistogram& h = registry.histogram("h");
  h.record(0.5);   // bucket le="1"
  h.record(3.0);   // a higher bucket
  h.record(300.0); // higher still

  const std::string text = prometheus_text(registry);
  // Every emitted bucket line's value must be non-decreasing down the
  // exposition and the last finite bucket <= +Inf == count.
  std::uint64_t last = 0;
  std::size_t pos = 0, buckets = 0;
  while ((pos = text.find("arvis_h_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    const std::size_t eol = text.find('\n', space);
    const std::uint64_t value =
        std::stoull(text.substr(space + 1, eol - space - 1));
    EXPECT_GE(value, last);
    last = value;
    ++buckets;
    pos = eol;
  }
  EXPECT_GE(buckets, 4U);  // three finite buckets + +Inf at minimum
  EXPECT_EQ(last, 3U);     // +Inf bucket == count

  const std::string file = ::testing::TempDir() + "/m.prom";
  ASSERT_TRUE(write_prometheus_text(registry, file).ok());
  EXPECT_EQ(read_file(file), text);
}

// ------------------------------------------------------- registry merge ----

TEST(RegistryMergeTest, ShardedMergeMatchesSingleStreamExactly) {
  // The same event stream, once through a single registry and once split
  // across two shards merged into a third: every counter value, histogram
  // bucket, sum and percentile must match bit for bit.
  const std::vector<double> stream_a{1.0, 8.0, 8.0, 0.25};
  const std::vector<double> stream_b{2.0, 1024.5, 8.0};

  TelemetryRegistry single;
  single.counter("x").add(3);
  single.counter("y").add(1);
  single.counter("z").add(2);
  for (const double v : stream_a) single.histogram("h").record(v);
  for (const double v : stream_b) single.histogram("h").record(v);

  TelemetryRegistry shard_a, shard_b;
  shard_a.counter("x").add(3);
  shard_a.counter("y").add(1);
  for (const double v : stream_a) shard_a.histogram("h").record(v);
  shard_b.counter("x");  // registered first so merge keeps x before z
  shard_b.counter("z").add(2);
  for (const double v : stream_b) shard_b.histogram("h").record(v);

  TelemetryRegistry merged;
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);

  EXPECT_EQ(merged.counter("x").value(), 3U);
  EXPECT_EQ(merged.counter("y").value(), 1U);
  EXPECT_EQ(merged.counter("z").value(), 2U);
  EXPECT_EQ(merged.histogram("h").count(), 7U);
  EXPECT_EQ(merged.histogram("h").sum(), single.histogram("h").sum());
  for (const double p : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(merged.histogram("h").percentile(p),
              single.histogram("h").percentile(p))
        << "p" << p;
  }
  // Same registration order, same contents: identical exports.
  EXPECT_EQ(merged.to_json(), single.to_json());
  EXPECT_EQ(prometheus_text(merged), prometheus_text(single));
}

// ------------------------------------------------- end-to-end SLO replay ----

const FrameStatsCache& obs_cache() {
  static const FrameStatsCache cache(*open_test_subject(17), 8, 8);
  return cache;
}

TEST(SloReplayTest, TightSlosBreachAndLeaveBlackBoxAndLiveStats) {
  // Ten simultaneous arrivals into a single link sized for ~2 sessions:
  // admission must reject most of them in slot 0, so an accept-ratio floor
  // of 0.999 breaches at the very first snapshot.
  WorkloadTrace trace;
  for (std::size_t i = 0; i < 10; ++i) {
    trace.events.push_back({0, 100, 0, 1.0, QosClass::kStandard});
  }

  ReplayConfig config;
  config.cluster.serving.steps = 64;
  config.cluster.serving.candidates = {3, 4, 5, 6};
  config.cluster.serving.v = calibrate_streaming_v(
      obs_cache(), config.cluster.serving.candidates,
      4.0 * obs_cache().workload(0).bytes(5));
  config.cluster.serving.admission.utilization_target = 1.0;
  config.driver.snapshot_period = 10;

  const std::string dir = ::testing::TempDir();
  const std::string box_path = dir + "/slo_box.json";
  const std::string live_path = dir + "/live.json";
  std::remove(box_path.c_str());
  std::remove(live_path.c_str());

  config.driver.slo.windows = {1, 2};
  config.driver.slo.specs = {
      {"accept-all", SloMetric::kAcceptRatio, 0.999, -1}};
  config.driver.slo.black_box_path = box_path;
  config.driver.live_stats_path = live_path;
  config.driver.config_echo = "{\"test\":\"slo-replay\"}";

  // Counters + an isolated flight recorder on both layers, so the test
  // neither reads nor pollutes the process-global ring.
  FlightRecorder recorder({256});
  TelemetryRegistry registry;
  TelemetryConfig telemetry;
  telemetry.mode = TelemetryMode::kCounters;
  telemetry.registry = &registry;
  telemetry.flight = &recorder;
  config.cluster.serving.telemetry = telemetry;
  config.driver.telemetry = telemetry;

  const double load = AdmissionController::cheapest_depth_load(
      obs_cache(), config.cluster.serving.candidates);
  ConstantChannel channel(2.5 * load);
  std::vector<ChannelModel*> channels{&channel};
  const std::vector<const FrameStatsCache*> profiles{&obs_cache()};
  const ReplayResult result = replay_trace(config, trace, profiles, channels);

  // The breach made it into the report...
  EXPECT_GE(result.report.slo_breaches, 1U);
  ASSERT_FALSE(result.report.slo_transitions.empty());
  EXPECT_EQ(result.report.slo_transitions[0].to, SloState::kBreach);
  EXPECT_EQ(result.report.slo_table().row_count(),
            result.report.slo_transitions.size());
  // ...into the counters...
  EXPECT_GE(registry.counter("slo/accept-all/breaches").value(), 1U);
  // ...into the flight recorder (admission rejects, the snapshot marker,
  // and the breach event itself)...
  bool saw_reject = false, saw_snapshot = false, saw_breach = false;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    switch (recorder.at(i).kind) {
      case FlightEventKind::kReject: saw_reject = true; break;
      case FlightEventKind::kSnapshot: saw_snapshot = true; break;
      case FlightEventKind::kSloBreach: saw_breach = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_snapshot);
  EXPECT_TRUE(saw_breach);

  // ...and onto disk: the auto-dumped black box and the live-stats file.
  const std::string box = read_file(box_path);
  ASSERT_FALSE(box.empty()) << "no auto black box at " << box_path;
  EXPECT_TRUE(balanced_json(box));
  EXPECT_NE(box.find("\"kind\":\"reject\""), std::string::npos);
  EXPECT_NE(box.find("\"config\":{\"test\":\"slo-replay\"}"),
            std::string::npos);

  const std::string live = read_file(live_path);
  ASSERT_FALSE(live.empty()) << "no live stats at " << live_path;
  EXPECT_TRUE(balanced_json(live));
  EXPECT_NE(live.find("\"slo\""), std::string::npos);
  EXPECT_NE(live.find("\"name\":\"accept-all\""), std::string::npos);
  EXPECT_NE(live.find("\"breaches\""), std::string::npos);

  std::remove(box_path.c_str());
  std::remove(live_path.c_str());
}

}  // namespace
}  // namespace arvis
