// Tests for the fault-injection runtime: fault plans (builder verbs, seeded
// chaos, validation), trace fault columns (round-trip exactness, legacy
// byte-for-byte stability), failover re-placement bookkeeping (the
// displaced == replaced + evicted + closed identity; zero stranded sessions
// after an outage), downed-link capacity accounting, close-during-outage
// routing, retry/backoff storms, brownout degradation ceilings, and the
// observability spine under chaos (flight ring with fault kinds, black-box
// parse-back of an outage -> failover -> recover run, SLO breach + recover
// on an outage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/cluster.hpp"
#include "serving/driver/event_loop.hpp"
#include "serving/driver/fault.hpp"
#include "serving/driver/replay.hpp"
#include "serving/driver/scenario.hpp"
#include "serving/driver/trace.hpp"
#include "serving/session_manager.hpp"
#include "serving/telemetry/flight_recorder.hpp"
#include "serving/telemetry/registry.hpp"

namespace arvis {
namespace {

const FrameStatsCache& fault_cache() {
  static const FrameStatsCache cache(*open_test_subject(17), 8, 8);
  return cache;
}

double cheapest_load(const std::vector<int>& candidates) {
  return AdmissionController::cheapest_depth_load(fault_cache(), candidates);
}

ServingConfig base_serving() {
  ServingConfig config;
  config.steps = 200;  // reservation hint under the driver
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(fault_cache(), config.candidates,
                                   4.0 * fault_cache().workload(0).bytes(5));
  config.admission.utilization_target = 1.0;
  return config;
}

SessionSpec session_spec(std::size_t arrival, std::size_t departure,
                         std::uint64_t seed = 7) {
  SessionSpec spec;
  spec.cache = &fault_cache();
  spec.arrival_slot = arrival;
  spec.departure_slot = departure;
  spec.seed = seed;
  return spec;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// ------------------------------------------------------------ FaultPlan ----

TEST(FaultPlanTest, BuilderVerbsComposeSortedValidPlans) {
  FaultPlan plan;
  plan.outage(0, 50, 20)
      .brownout(1, 30, 40, 0.5)
      .radio_fade(1, 120, 20, 0.25, 10, /*steps=*/4)
      .correlated_flap({0, 1}, 200, 5, 20, 2);
  ASSERT_FALSE(plan.empty());
  EXPECT_TRUE(validate_fault_plan(plan, /*link_count=*/2).ok());
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].slot, plan.events[i].slot) << i;
  }
  // The outage produced the matched down/up pair, the flap one pair per
  // link per repeat.
  std::size_t downs = 0, ups = 0;
  for (const FaultEvent& e : plan.events) {
    downs += e.kind == FaultKind::kLinkDown;
    ups += e.kind == FaultKind::kLinkUp;
  }
  EXPECT_EQ(downs, 1U + 2U * 2U);
  EXPECT_EQ(downs, ups);

  // duration == 0: the link never recovers (no matching up event).
  FaultPlan forever;
  forever.outage(0, 10, 0);
  ASSERT_EQ(forever.events.size(), 1U);
  EXPECT_EQ(forever.events[0].kind, FaultKind::kLinkDown);

  // merge keeps the combined stream sorted and valid.
  FaultPlan merged;
  merged.outage(0, 300, 10).merge(plan);
  EXPECT_TRUE(validate_fault_plan(merged, 2).ok());
  for (std::size_t i = 1; i < merged.events.size(); ++i) {
    EXPECT_LE(merged.events[i - 1].slot, merged.events[i].slot) << i;
  }
}

TEST(FaultPlanTest, SeededPlansAreDeterministic) {
  FaultPlanConfig config;
  config.seed = 0xC0FFEE;
  config.link_count = 4;
  config.horizon = 2'000;
  config.outages = 2;
  config.flaps = 1;
  config.fades = 1;
  config.brownouts = 1;
  const FaultPlan a = make_fault_plan(config);
  const FaultPlan b = make_fault_plan(config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(validate_fault_plan(a, config.link_count).ok());

  config.seed = 0xC0FFEF;
  const FaultPlan c = make_fault_plan(config);
  EXPECT_NE(a.events, c.events);
}

TEST(FaultPlanTest, DegradePulseRampsHoldsAndRecovers) {
  FaultPlan plan;
  plan.degrade_pulse(/*link=*/1, /*at=*/100, /*ramp_slots=*/30,
                     /*floor_scale=*/0.25, /*delay=*/4.0, /*hold_slots=*/20,
                     /*steps=*/3);
  EXPECT_TRUE(validate_fault_plan(plan, /*link_count=*/2).ok());
  // 3 down-ramp stages plus the single recovery event.
  ASSERT_EQ(plan.events.size(), 4U);
  for (const FaultEvent& e : plan.events) {
    EXPECT_EQ(e.kind, FaultKind::kLinkDegrade);
    EXPECT_EQ(e.link, 1U);
  }
  // Scale walks monotonically down to the floor, delay up to the cap; the
  // last event restores nominal.
  EXPECT_GT(plan.events[0].scale, plan.events[1].scale);
  EXPECT_GT(plan.events[1].scale, plan.events[2].scale);
  EXPECT_EQ(plan.events[2].scale, 0.25);
  EXPECT_EQ(plan.events[2].delay, 4.0);
  EXPECT_LT(plan.events[0].delay, plan.events[2].delay);
  EXPECT_EQ(plan.events[3].scale, 1.0);
  EXPECT_EQ(plan.events[3].delay, 0.0);
  EXPECT_EQ(plan.events[3].slot, 100U + 30U + 20U);

  // Degenerate inputs throw rather than emit malformed plans.
  FaultPlan bad;
  EXPECT_THROW(bad.degrade_pulse(0, 10, 2, 0.5, 1.0, 5, /*steps=*/4),
               std::invalid_argument);  // steps > ramp_slots
  EXPECT_THROW(bad.degrade_pulse(0, 10, 8, 1.5, 1.0, 5),
               std::invalid_argument);  // floor >= 1
  EXPECT_THROW(bad.degrade_pulse(0, 10, 8, 0.5, -1.0, 5),
               std::invalid_argument);  // negative delay
}

TEST(FaultPlanTest, HandoverWalkIsDeterministicAndValid) {
  FaultPlan a, b;
  a.handover_walk(/*seed=*/0xA11CE, /*link_count=*/3, /*walkers=*/4,
                  /*at=*/50, /*horizon=*/1'000, /*dwell_slots=*/40,
                  /*floor_scale=*/0.3, /*delay=*/2.0);
  b.handover_walk(0xA11CE, 3, 4, 50, 1'000, 40, 0.3, 2.0);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.events, b.events);
  EXPECT_TRUE(validate_fault_plan(a, 3).ok());
  for (const FaultEvent& e : a.events) {
    EXPECT_EQ(e.kind, FaultKind::kLinkDegrade);
    EXPECT_LT(e.link, 3U);
  }

  FaultPlan c;
  c.handover_walk(0xD1FF, 3, 4, 50, 1'000, 40, 0.3, 2.0);
  EXPECT_NE(a.events, c.events);

  FaultPlan bad;
  EXPECT_THROW(bad.handover_walk(1, /*link_count=*/1, 2, 0, 100, 20, 0.3, 1.0),
               std::invalid_argument);
  EXPECT_THROW(bad.handover_walk(1, 3, 2, 0, 100, /*dwell_slots=*/1, 0.3, 1.0),
               std::invalid_argument);

  // The seeded-plan config grows the same verb: same seed, same walk.
  FaultPlanConfig config;
  config.seed = 0xBADD1E;
  config.link_count = 3;
  config.horizon = 1'500;
  config.walkers = 3;
  const FaultPlan x = make_fault_plan(config);
  const FaultPlan y = make_fault_plan(config);
  EXPECT_EQ(x.events, y.events);
  EXPECT_TRUE(validate_fault_plan(x, config.link_count).ok());
  std::size_t degrades = 0;
  for (const FaultEvent& e : x.events) {
    degrades += e.kind == FaultKind::kLinkDegrade;
  }
  EXPECT_GT(degrades, 0U);
}

TEST(FaultPlanTest, ValidationCatchesMalformedPlans) {
  // Out-of-order slots.
  FaultPlan unsorted;
  unsorted.events = {{100, FaultKind::kLinkDown, 0, 1.0},
                     {50, FaultKind::kLinkUp, 0, 1.0}};
  EXPECT_FALSE(validate_fault_plan(unsorted, 2).ok());

  // Link out of range — but only when the link count is known.
  FaultPlan far_link;
  far_link.events = {{10, FaultKind::kLinkDown, 7, 1.0}};
  EXPECT_FALSE(validate_fault_plan(far_link, 2).ok());
  EXPECT_TRUE(validate_fault_plan(far_link, 0).ok());

  // A non-scale event must carry exactly 1.0 (trace round-trip contract).
  FaultPlan dirty_scale;
  dirty_scale.events = {{10, FaultKind::kLinkDown, 0, 0.5}};
  EXPECT_FALSE(validate_fault_plan(dirty_scale, 2).ok());

  // Negative / non-finite scales.
  FaultPlan bad_scale;
  bad_scale.events = {{10, FaultKind::kCapacityScale, 0, -0.5}};
  EXPECT_FALSE(validate_fault_plan(bad_scale, 2).ok());

  FaultPlanConfig zero_links;
  zero_links.link_count = 0;
  EXPECT_THROW(make_fault_plan(zero_links), std::invalid_argument);
}

// --------------------------------------------------- trace fault columns ----

TEST(WorkloadTraceFaultTest, FaultColumnsRoundTripExactly) {
  WorkloadTrace trace;
  trace.events = {{0, 50, 0, 1.0, QosClass::kStandard},
                  {10, 0, 0, 2.0, QosClass::kPremium, 40}};
  // More faults than sessions: the tail rows are fault-only.
  trace.faults = {{5, FaultKind::kLinkDown, 1, 1.0},
                  {20, FaultKind::kCapacityScale, 0, 0.375},
                  {45, FaultKind::kLinkUp, 1, 1.0}};

  const std::string text = trace.to_table().to_string();
  const Result<CsvTable> csv = parse_csv(text);
  ASSERT_TRUE(csv.ok()) << csv.status().message();
  const Result<WorkloadTrace> loaded = parse_workload_trace(*csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->events, trace.events);
  EXPECT_EQ(loaded->faults, trace.faults);

  // And the full serialize -> parse -> serialize cycle is a fixed point.
  EXPECT_EQ(loaded->to_table().to_string(), text);
}

TEST(WorkloadTraceFaultTest, FaultFreeTraceKeepsLegacyFileByteForByte) {
  WorkloadTrace trace;
  trace.events = {{0, 50, 0, 1.0, QosClass::kStandard},
                  {10, 0, 0, 0.5, QosClass::kBestEffort}};
  const std::string text = trace.to_table().to_string();
  // The legacy five-column shape, no fault or close columns anywhere.
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "t_arrive,duration,profile,weight,qos");
  EXPECT_EQ(text.find("fault"), std::string::npos);
  const Result<CsvTable> csv = parse_csv(text);
  ASSERT_TRUE(csv.ok());
  const Result<WorkloadTrace> loaded = parse_workload_trace(*csv);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->events, trace.events);
  EXPECT_TRUE(loaded->faults.empty());
}

TEST(WorkloadTraceFaultTest, ParserRejectsMalformedFaultRows) {
  const std::string header =
      "t_arrive,duration,profile,weight,qos,fault,f_link,f_slot,f_scale\n";
  // Unknown fault kind.
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,meteor,0,5,\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // f_scale on a non-scale fault.
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,link-down,0,5,0.5\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // Capacity scale without its scale.
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,capacity-scale,0,5,\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // A partial fault (kind empty but link set) is neither empty nor full.
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,,3,,\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // A fault-only row must leave every session cell empty.
  {
    const Result<CsvTable> csv =
        parse_csv(header + ",10,,,,link-down,0,5,\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
}

TEST(WorkloadTraceFaultTest, DegradeDelayColumnRoundTripsExactly) {
  WorkloadTrace trace;
  trace.events = {{0, 50, 0, 1.0, QosClass::kStandard}};
  // A degrade with delay, a degrade without, and a scale fault: f_delay must
  // appear (some fault carries a non-zero delay) but only degrade rows fill
  // it.
  trace.faults = {{5, FaultKind::kLinkDegrade, 1, 0.5, 3.25},
                  {20, FaultKind::kCapacityScale, 0, 0.375},
                  {40, FaultKind::kLinkDegrade, 1, 1.0, 0.0}};

  const std::string text = trace.to_table().to_string();
  EXPECT_NE(text.find("f_delay"), std::string::npos);
  const Result<CsvTable> csv = parse_csv(text);
  ASSERT_TRUE(csv.ok()) << csv.status().message();
  const Result<WorkloadTrace> loaded = parse_workload_trace(*csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->faults, trace.faults);
  EXPECT_EQ(loaded->to_table().to_string(), text);

  // Delay-free degrade plans keep the narrower fault header: no f_delay.
  WorkloadTrace no_delay;
  no_delay.events = trace.events;
  no_delay.faults = {{5, FaultKind::kLinkDegrade, 1, 0.5, 0.0}};
  const std::string narrow = no_delay.to_table().to_string();
  EXPECT_EQ(narrow.find("f_delay"), std::string::npos);
  const Result<CsvTable> narrow_csv = parse_csv(narrow);
  ASSERT_TRUE(narrow_csv.ok());
  const Result<WorkloadTrace> narrow_loaded = parse_workload_trace(*narrow_csv);
  ASSERT_TRUE(narrow_loaded.ok()) << narrow_loaded.status().message();
  EXPECT_EQ(narrow_loaded->faults, no_delay.faults);
}

TEST(WorkloadTraceFaultTest, ParserRejectsMalformedDelayCells) {
  const std::string header =
      "t_arrive,duration,profile,weight,qos,fault,f_link,f_slot,f_scale,"
      "f_delay\n";
  // A degrade row needs a numeric delay when the column exists.
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,link-degrade,0,5,0.5,\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // Non-degrade faults must leave the delay cell empty.
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,link-down,0,5,,2.0\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // A degrade also carries a scale (it is a scale-carrying fault).
  {
    const Result<CsvTable> csv =
        parse_csv(header + "0,10,0,1.0,standard,link-degrade,0,5,,1.0\n");
    ASSERT_TRUE(csv.ok());
    EXPECT_FALSE(parse_workload_trace(*csv).ok());
  }
  // Validation rejects a delay riding on a non-degrade fault kind.
  FaultPlan dirty;
  dirty.events = {{10, FaultKind::kCapacityScale, 0, 0.5, 2.0}};
  EXPECT_FALSE(validate_fault_plan(dirty, 2).ok());
  FaultPlan negative;
  negative.events = {{10, FaultKind::kLinkDegrade, 0, 0.5, -1.0}};
  EXPECT_FALSE(validate_fault_plan(negative, 2).ok());
}

// ------------------------------------------- failover + outage accounting ----

/// A 2-link cluster under a flash crowd with a mid-spike outage on link 1
/// and the retry loop on: the scenario every chaos invariant runs against.
struct ChaosRun {
  ReplayConfig config;
  ScenarioConfig scenario;
  std::size_t spike_start = 0;
};

ChaosRun chaos_run(FlightRecorder* flight = nullptr,
                   TelemetryRegistry* registry = nullptr) {
  ChaosRun run;
  run.config.cluster.serving = base_serving();
  run.config.cluster.placement = PlacementPolicy::kLeastLoaded;
  run.config.driver.snapshot_period = 25;
  run.config.driver.retry.enabled = true;

  run.scenario.horizon = 800;
  run.scenario.mean_duration = 150.0;
  run.scenario.max_duration = 400;
  run.scenario.base_rate = 0.5 * 4.0 / run.scenario.mean_duration;
  run.scenario.profile_count = 1;
  run.scenario.seed = 42;
  run.scenario.spike_duration = 80;
  run.scenario.spike_multiplier = 12.0;
  run.spike_start = run.scenario.resolved_spike_start();

  run.config.faults.outage(/*link=*/1, /*at=*/run.spike_start + 10,
                           /*duration=*/40);
  if (flight != nullptr) {
    TelemetryConfig telemetry;
    telemetry.flight = flight;
    if (registry != nullptr) {
      telemetry.mode = TelemetryMode::kCounters;
      telemetry.registry = registry;
    }
    run.config.cluster.serving.telemetry = telemetry;
    run.config.driver.telemetry = telemetry;
  }
  return run;
}

ReplayResult replay_chaos(const ChaosRun& run) {
  const double load = cheapest_load(run.config.cluster.serving.candidates);
  ConstantChannel a(2.4 * load), b(2.4 * load);
  std::vector<ChannelModel*> channels{&a, &b};
  const std::vector<const FrameStatsCache*> profiles{&fault_cache()};
  return replay_scenario(run.config,
                         *make_scenario(ScenarioKind::kFlashCrowd,
                                        run.scenario),
                         profiles, channels);
}

TEST(FaultReplayTest, SameSeedSameFaultPlanIsBitIdenticalTwice) {
  const ChaosRun run = chaos_run();
  const ReplayResult first = replay_chaos(run);
  const ReplayResult second = replay_chaos(run);

  // The whole DriverReport snapshot series, bit for bit.
  ASSERT_EQ(first.report.snapshots.size(), second.report.snapshots.size());
  for (std::size_t i = 0; i < first.report.snapshots.size(); ++i) {
    const MetricsSnapshot& x = first.report.snapshots[i];
    const MetricsSnapshot& y = second.report.snapshots[i];
    EXPECT_EQ(x.slot, y.slot) << i;
    EXPECT_EQ(x.active_sessions, y.active_sessions) << i;
    EXPECT_EQ(x.admitted_total, y.admitted_total) << i;
    EXPECT_EQ(x.rejected_total, y.rejected_total) << i;
    EXPECT_EQ(x.capacity_offered_total, y.capacity_offered_total) << i;
    EXPECT_EQ(x.capacity_used_total, y.capacity_used_total) << i;
    EXPECT_EQ(x.window_utilization, y.window_utilization) << i;
    EXPECT_EQ(x.link_load_fairness, y.link_load_fairness) << i;
  }
  EXPECT_EQ(first.report.slots_executed, second.report.slots_executed);
  EXPECT_EQ(first.report.arrivals_injected, second.report.arrivals_injected);
  EXPECT_EQ(first.report.faults_applied, second.report.faults_applied);
  EXPECT_EQ(first.report.retries_scheduled, second.report.retries_scheduled);
  EXPECT_EQ(first.report.retries_abandoned, second.report.retries_abandoned);

  const ClusterMetrics& m = first.cluster.metrics;
  const ClusterMetrics& n = second.cluster.metrics;
  EXPECT_EQ(m.failover_displaced, n.failover_displaced);
  EXPECT_EQ(m.failover_replaced, n.failover_replaced);
  EXPECT_EQ(m.fault_evicted, n.fault_evicted);
  EXPECT_EQ(m.fault_closed, n.fault_closed);
  EXPECT_EQ(m.fleet.capacity_used, n.fleet.capacity_used);
  EXPECT_EQ(m.fleet.mean_quality, n.fleet.mean_quality);

  ASSERT_EQ(first.cluster.sessions.size(), second.cluster.sessions.size());
  for (std::size_t i = 0; i < first.cluster.sessions.size(); ++i) {
    EXPECT_EQ(first.cluster.sessions[i].link, second.cluster.sessions[i].link)
        << i;
    EXPECT_EQ(first.cluster.sessions[i].failovers,
              second.cluster.sessions[i].failovers)
        << i;
  }
}

TEST(FaultReplayTest, SingleLinkOutageLeavesNoStrandedSessions) {
  const ChaosRun run = chaos_run();
  const ReplayResult result = replay_chaos(run);
  const ClusterMetrics& m = result.cluster.metrics;

  // The outage cycle applied and displaced someone.
  EXPECT_EQ(m.link_down_events, 1U);
  EXPECT_EQ(m.link_up_events, 1U);
  ASSERT_GT(m.failover_displaced, 0U);

  // The books balance exactly: every displaced session was re-placed,
  // evicted, or closed — none stranded.
  EXPECT_EQ(m.failover_displaced,
            m.failover_replaced + m.fault_evicted + m.fault_closed);

  // Per-session outcomes agree with the fleet counters.
  std::size_t failover_sum = 0, evicted = 0;
  for (const ClusterSessionOutcome& outcome : result.cluster.sessions) {
    failover_sum += outcome.failovers;
    evicted += outcome.fault_evicted ? 1 : 0;
    if (outcome.fault_evicted) {
      // An evicted session still reports a coherent window and its last link.
      EXPECT_TRUE(outcome.session.admitted);
      EXPECT_LE(outcome.session.departure_slot, result.report.slots_executed +
                                                    result.report.slots_skipped);
    }
  }
  EXPECT_EQ(failover_sum, m.failover_replaced);
  EXPECT_EQ(evicted, m.fault_evicted);

  // Nothing is left active after finish(): every admitted session has a
  // departure bound within the run.
  for (const ClusterSessionOutcome& outcome : result.cluster.sessions) {
    if (!outcome.session.admitted) continue;
    EXPECT_NE(outcome.link, -1);
    EXPECT_LE(outcome.session.departure_slot,
              result.report.slots_executed + result.report.slots_skipped);
  }
}

TEST(ClusterFaultTest, UtilizationExcludesDownedLinkCapacity) {
  // No sessions at all: offered capacity is the only moving part, so the
  // accounting is pinned exactly. 2 links x 40 slots, link 1 down for 10.
  ClusterConfig config;
  config.serving = base_serving();
  const double cap = 1.0e5;
  const std::vector<double> means{cap, cap};

  EdgeCluster cluster(config, means);
  const std::vector<double> caps{cap, cap};
  for (std::size_t t = 0; t < 40; ++t) {
    if (t == 10) {
      ASSERT_TRUE(cluster.set_link_state(1, true));
    }
    if (t == 20) {
      ASSERT_TRUE(cluster.set_link_state(1, false));
    }
    cluster.step(caps);
  }
  const ClusterResult result = cluster.finish();
  // 40 slots of link 0 plus 30 of link 1: the 10 downed slots offer nothing.
  EXPECT_EQ(result.metrics.fleet.capacity_offered, cap * (40.0 + 30.0));
  // The per-link view agrees: link clocks stayed in lockstep, only the
  // downed window's capacity vanished.
  EXPECT_EQ(result.metrics.per_link[0].capacity_offered, cap * 40.0);
  EXPECT_EQ(result.metrics.per_link[1].capacity_offered, cap * 30.0);
}

TEST(ClusterFaultTest, CapacityScaleShrinksAdmissionHeadroom) {
  ClusterConfig config;
  config.serving = base_serving();
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load};

  // At nominal capacity the link takes the session; at a deep fade the same
  // session is refused — admission and the capacity plane agree on scale.
  for (const double scale : {1.0, 0.05}) {
    EdgeCluster cluster(config, means);
    ASSERT_TRUE(cluster.set_link_capacity_scale(0, scale));
    const std::size_t id = cluster.submit(session_spec(0, 20));
    cluster.step({means[0] * scale});
    const ClusterResult result = cluster.finish();
    EXPECT_EQ(result.sessions[id].session.admitted, scale == 1.0) << scale;
  }

  EdgeCluster cluster(config, means);
  EXPECT_FALSE(cluster.set_link_capacity_scale(0, -1.0));
  EXPECT_FALSE(cluster.set_link_capacity_scale(1, 0.5));  // out of range
  EXPECT_FALSE(cluster.set_link_state(1, true));
}

TEST(ClusterFaultTest, CloseDuringOutageRoutesToEvictionPathAndCounts) {
  // One link, one session. The link goes down (the session is displaced, no
  // surviving link exists yet to re-place it), then the external close fires
  // before the slot steps: request_close must route it to the fault-closed
  // books, and the driver must count the close as applied.
  ClusterConfig config;
  config.serving = base_serving();
  const double load = cheapest_load(config.serving.candidates);
  const std::vector<double> means{4.0 * load};

  EdgeCluster cluster(config, means);
  ConstantChannel channel(means[0]);
  ClusterBackend backend(cluster, {&channel});
  DriverConfig driver;
  driver.snapshot_period = 0;
  EventLoop loop(driver, backend);
  loop.schedule_arrival(0, session_spec(0, 60));
  // Same slot, scheduled after the outage: calendar order is (slot, seq),
  // so the close sees the *displaced* session.
  loop.schedule_link_down(10, 0);
  loop.schedule_close(10, 0);
  const DriverReport report = loop.run();

  EXPECT_EQ(report.faults_applied, 1U);
  EXPECT_EQ(report.closes_applied, 1U);
  EXPECT_EQ(report.closes_ignored, 0U);

  const ClusterResult result = cluster.finish();
  EXPECT_EQ(result.metrics.failover_displaced, 1U);
  EXPECT_EQ(result.metrics.fault_closed, 1U);
  EXPECT_EQ(result.metrics.failover_replaced, 0U);
  EXPECT_EQ(result.metrics.fault_evicted, 0U);
  // The closed session's window ends at the close slot, on its old link.
  EXPECT_TRUE(result.sessions[0].session.admitted);
  EXPECT_EQ(result.sessions[0].session.departure_slot, 10U);
  EXPECT_FALSE(result.sessions[0].fault_evicted);
}

// -------------------------------------------------------- retry/backoff ----

TEST(RetryTest, StormSchedulesBacksOffAndAbandons) {
  const ChaosRun with_retry = chaos_run();
  const ReplayResult storm = replay_chaos(with_retry);
  // The spike x outage produced a storm, and abandoned lineages are
  // accounted (attempts exhausted or lifetime over).
  EXPECT_GT(storm.report.retries_scheduled, 0U);
  EXPECT_LE(storm.report.retries_abandoned, storm.report.retries_scheduled);

  ChaosRun no_retry = chaos_run();
  no_retry.config.driver.retry.enabled = false;
  const ReplayResult quiet = replay_chaos(no_retry);
  EXPECT_EQ(quiet.report.retries_scheduled, 0U);
  EXPECT_EQ(quiet.report.retries_abandoned, 0U);
  // Every retry arrival is an extra injected arrival beyond the trace.
  EXPECT_EQ(storm.report.arrivals_injected,
            quiet.report.arrivals_injected + storm.report.retries_scheduled);

  // Fewer attempts => no more retries than the generous config.
  ChaosRun one_shot = chaos_run();
  one_shot.config.driver.retry.max_attempts = 1;
  const ReplayResult capped = replay_chaos(one_shot);
  EXPECT_GT(capped.report.retries_scheduled, 0U);
  EXPECT_LE(capped.report.retries_scheduled, storm.report.retries_scheduled);
}

TEST(RetryTest, ConfigValidation) {
  ClusterConfig cluster_config;
  cluster_config.serving = base_serving();
  const std::vector<double> means{1.0e5};
  EdgeCluster cluster(cluster_config, means);
  ConstantChannel channel(means[0]);
  ClusterBackend backend(cluster, {&channel});

  DriverConfig bad = {};
  bad.retry.enabled = true;
  bad.retry.max_attempts = 0;
  EXPECT_THROW(EventLoop(bad, backend), std::invalid_argument);

  bad.retry.max_attempts = 3;
  bad.retry.base_backoff_slots = 0;
  EXPECT_THROW(EventLoop(bad, backend), std::invalid_argument);

  bad.retry.base_backoff_slots = 128;
  bad.retry.max_backoff_slots = 64;
  EXPECT_THROW(EventLoop(bad, backend), std::invalid_argument);
}

// ------------------------------------------------------------- brownout ----

TEST(BrownoutTest, EnterLowersQualityCeilingsAndExitRestores) {
  // One manager, capacity for ~4 sessions. A fault-plane capacity scale
  // drives utilization over the enter threshold; releasing it exits.
  FlightRecorder recorder({64});
  ServingConfig config = base_serving();
  config.steps = 60;
  config.degradation.enabled = true;
  config.degradation.enter_utilization = 0.90;
  config.degradation.exit_utilization = 0.50;
  config.telemetry.flight = &recorder;
  const double load = cheapest_load(config.candidates);

  SessionManager manager(config, 4.0 * load);
  for (std::size_t i = 0; i < 2; ++i) {
    SessionSpec spec = session_spec(0, 60, i);
    spec.qos = static_cast<std::uint8_t>(i);  // one best-effort, one standard
    manager.submit(spec);
  }
  auto step = [&] {
    manager.begin_slot();
    manager.decide_all_sessions();
    manager.finish_slot(4.0 * load);
  };
  step();
  EXPECT_FALSE(manager.brownout_active());  // ~50% utilization: healthy

  // The fade shrinks the denominator: 2 sessions / 2-session capacity.
  manager.set_capacity_scale(0.5);
  step();
  EXPECT_TRUE(manager.brownout_active());
  EXPECT_EQ(manager.brownout_enters(), 1U);

  manager.set_capacity_scale(1.0);
  step();
  EXPECT_FALSE(manager.brownout_active());
  EXPECT_EQ(manager.brownout_enters(), 1U);

  bool saw_enter = false, saw_exit = false;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    saw_enter |= recorder.at(i).kind == FlightEventKind::kBrownoutEnter;
    saw_exit |= recorder.at(i).kind == FlightEventKind::kBrownoutExit;
  }
  EXPECT_TRUE(saw_enter);
  EXPECT_TRUE(saw_exit);
}

TEST(BrownoutTest, TierCeilingsBindPerTierDuringBrownout) {
  // Two identical specs on different tiers under a permanent brownout:
  // best-effort loses all headroom (pinned to the cheapest candidate),
  // premium keeps the full set — so the decide-group memoization must key
  // on the tier ceiling, not just the spec inputs.
  ServingConfig config = base_serving();
  config.steps = 40;
  config.degradation.enabled = true;
  config.degradation.enter_utilization = 0.01;  // brownout from slot 0
  config.degradation.exit_utilization = 0.005;
  config.degradation.tier_drop[0] = config.candidates.size();  // floor: 1
  config.degradation.tier_drop[1] = 2;
  config.degradation.tier_drop[2] = 0;  // premium untouched
  const double load = cheapest_load(config.candidates);

  SessionManager manager(config, 16.0 * load);
  SessionSpec best_effort = session_spec(0, kNeverDeparts, 7);
  best_effort.qos = 0;
  SessionSpec premium = session_spec(0, kNeverDeparts, 7);
  premium.qos = 2;
  const std::size_t be_id = manager.submit(best_effort);
  const std::size_t pr_id = manager.submit(premium);
  for (std::size_t t = 0; t < config.steps; ++t) {
    manager.begin_slot();
    manager.decide_all_sessions();
    manager.finish_slot(16.0 * load);
  }
  ASSERT_TRUE(manager.brownout_active());
  const ServingResult result = manager.finish();
  // The best-effort session never left the floor candidate; the premium
  // session (identical spec otherwise) climbed above it.
  int be_peak = 0, pr_peak = 0;
  for (std::size_t t = 0; t < result.sessions[be_id].trace.size(); ++t) {
    be_peak = std::max(be_peak, result.sessions[be_id].trace.at(t).depth);
  }
  for (std::size_t t = 0; t < result.sessions[pr_id].trace.size(); ++t) {
    pr_peak = std::max(pr_peak, result.sessions[pr_id].trace.at(t).depth);
  }
  EXPECT_EQ(be_peak, config.candidates.front());
  EXPECT_GT(pr_peak, be_peak);
}

// ------------------------------------------------- observability spine ----

TEST(FlightRingFaultTest, RingWrapKeepsMixedFaultKinds) {
  FlightRecorder recorder({6});
  // 3 full chaos cycles of 4 kinds = 12 events through a 6-slot ring.
  for (std::size_t cycle = 0; cycle < 3; ++cycle) {
    const std::size_t slot = cycle * 10;
    recorder.record(FlightEventKind::kFault, slot, 999, 1.0, 0.0);
    recorder.record(FlightEventKind::kFailover, slot + 1, 999, 5.0, 0.0);
    recorder.record(FlightEventKind::kRetry, slot + 2, 1000, 5.0, 1.0);
    recorder.record(FlightEventKind::kFault, slot + 3, 999, 1.0, 1.0);
  }
  EXPECT_EQ(recorder.recorded_total(), 12U);
  EXPECT_EQ(recorder.size(), 6U);
  EXPECT_EQ(recorder.dropped(), 6U);
  // The held window is the newest 6, oldest first, kinds intact.
  EXPECT_EQ(recorder.at(0).seq, 7U);
  EXPECT_EQ(recorder.at(0).kind, FlightEventKind::kRetry);
  EXPECT_EQ(recorder.at(5).kind, FlightEventKind::kFault);
  EXPECT_EQ(recorder.at(5).slot, 23U);
  EXPECT_EQ(recorder.at(5).b, 1.0);  // link-up code

  // The dump names the fault kinds.
  const std::string json = black_box_json(recorder, nullptr, "");
  EXPECT_NE(json.find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"failover\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"retry\""), std::string::npos);
}

TEST(BlackBoxFaultTest, OutageFailoverRecoverSequenceParsesBack) {
  FlightRecorder recorder({4096});
  TelemetryRegistry registry;
  const ChaosRun run = chaos_run(&recorder, &registry);
  const ReplayResult result = replay_chaos(run);
  ASSERT_GT(result.cluster.metrics.failover_replaced, 0U)
      << "scenario must produce at least one successful failover";

  // The ring holds the ordered incident tape: down -> failover -> up.
  std::size_t down_seq = 0, failover_seq = 0, up_seq = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    const FlightEvent& e = recorder.at(i);
    if (e.kind == FlightEventKind::kFault && e.b == 0.0 && down_seq == 0) {
      down_seq = e.seq;
    }
    if (e.kind == FlightEventKind::kFailover && failover_seq == 0) {
      failover_seq = e.seq;
    }
    if (e.kind == FlightEventKind::kFault && e.b == 1.0 && up_seq == 0) {
      up_seq = e.seq;
    }
  }
  ASSERT_GT(down_seq, 0U);
  ASSERT_GT(failover_seq, 0U);
  ASSERT_GT(up_seq, 0U);
  EXPECT_LT(down_seq, failover_seq);
  EXPECT_LT(failover_seq, up_seq);

  // The black box carries the whole story in one parseable document.
  const std::string json =
      black_box_json(recorder, &registry, "{\"run\":\"chaos\"}");
  EXPECT_NE(json.find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"failover\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"retry\""), std::string::npos);
  EXPECT_NE(json.find("\"config\":{\"run\":\"chaos\"}"), std::string::npos);
}

TEST(SloFaultTest, OutageBreachesThenRecovers) {
  const std::string box_path = ::testing::TempDir() + "/fault_slo_box.json";
  std::remove(box_path.c_str());

  ChaosRun run = chaos_run();
  run.config.driver.slo.windows = {2, 6};
  run.config.driver.slo.specs = {
      {"accept-ratio", SloMetric::kAcceptRatio, 0.99, -1},
      {"reject-ratio", SloMetric::kRejectRatio, 0.01, -1},
  };
  run.config.driver.slo.black_box_path = box_path;
  run.config.driver.config_echo = "{\"test\":\"fault-slo\"}";

  const ReplayResult result = replay_chaos(run);
  EXPECT_GE(result.report.slo_breaches, 1U);
  bool breached = false, recovered_after_breach = false;
  for (const SloTransition& t : result.report.slo_transitions) {
    if (t.to == SloState::kBreach) breached = true;
    if (breached && t.to == SloState::kOk) recovered_after_breach = true;
  }
  EXPECT_TRUE(breached);
  EXPECT_TRUE(recovered_after_breach)
      << "the cluster must recover once the link comes back";

  // The breach auto-dumped the black box.
  const std::string box = read_file(box_path);
  ASSERT_FALSE(box.empty()) << "no black box at " << box_path;
  EXPECT_NE(box.find("\"kind\":\"slo_breach\""), std::string::npos);
  std::remove(box_path.c_str());
}

}  // namespace
}  // namespace arvis
