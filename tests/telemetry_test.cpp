// Tests for the telemetry subsystem (serving/telemetry): registry get-or-
// create semantics, log2 histogram bucketing and exact power-of-two
// percentiles, tracer ring wraparound and sampling, Chrome trace_event JSON
// export validated by an in-test parse-back, the per-phase rollup, config
// validation, and the SessionManager counters end to end.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/csv.hpp"
#include "datasets/catalog.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/session_manager.hpp"
#include "serving/telemetry/export.hpp"
#include "serving/telemetry/registry.hpp"
#include "serving/telemetry/tracer.hpp"

namespace arvis {
namespace {

// ----------------------------------------------------------- registry ----

TEST(TelemetryCounterTest, GetOrCreateReturnsStableHandles) {
  TelemetryRegistry registry;
  TelemetryCounter& a = registry.counter("link0/slots");
  TelemetryCounter& b = registry.counter("link0/slots");
  EXPECT_EQ(&a, &b);  // same name, same instrument
  EXPECT_EQ(registry.counter_count(), 1U);

  a.add();
  a.add(41);
  EXPECT_EQ(b.value(), 42U);

  // Handles survive later registrations (deque storage).
  TelemetryCounter* handles[64];
  // Names built with += (not operator+) to dodge GCC's -Wrestrict false
  // positive on "literal" + to_string temporaries (GCC PR 105651).
  const auto name_of = [](int i) {
    std::string name = "c";
    name += std::to_string(i);
    return name;
  };
  for (int i = 0; i < 64; ++i) {
    handles[i] = &registry.counter(name_of(i));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(handles[i], &registry.counter(name_of(i)));
  }
  EXPECT_EQ(registry.counter_count(), 65U);
  EXPECT_EQ(registry.find_counter("link0/slots"), &a);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
}

TEST(TelemetryRegistryTest, TablesAndJsonListRegistrationOrder) {
  TelemetryRegistry registry;
  registry.counter("first").add(1);
  registry.counter("second").add(2);
  registry.histogram("h").record(4.0);

  const CsvTable counters = registry.counters_table();
  ASSERT_EQ(counters.row_count(), 2U);
  EXPECT_EQ(std::get<std::string>(counters.at(0, 0)), "first");
  EXPECT_EQ(std::get<std::string>(counters.at(1, 0)), "second");

  const CsvTable histograms = registry.histograms_table();
  ASSERT_EQ(histograms.row_count(), 1U);
  EXPECT_EQ(std::get<std::string>(histograms.at(0, 0)), "h");

  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"first\":1"), std::string::npos);
  EXPECT_NE(json.find("\"second\":2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------- histogram ----

TEST(TelemetryHistogramTest, BucketIndexMatchesLog2Contract) {
  // Bucket 0 = [0, 1); bucket b >= 1 = [2^(b-1), 2^b).
  EXPECT_EQ(TelemetryHistogram::bucket_index(0.0), 0U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(0.99), 0U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(-5.0), 0U);  // clamped
  EXPECT_EQ(TelemetryHistogram::bucket_index(1.0), 1U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(1.99), 1U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(2.0), 2U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(3.0), 2U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(4.0), 3U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(1024.0), 11U);
  EXPECT_EQ(TelemetryHistogram::bucket_index(1e300),
            TelemetryHistogram::kBuckets - 1);  // clamped high

  EXPECT_EQ(TelemetryHistogram::bucket_lower_bound(0), 0.0);
  EXPECT_EQ(TelemetryHistogram::bucket_lower_bound(1), 1.0);
  EXPECT_EQ(TelemetryHistogram::bucket_lower_bound(2), 2.0);
  EXPECT_EQ(TelemetryHistogram::bucket_lower_bound(11), 1024.0);
}

TEST(TelemetryHistogramTest, PowerOfTwoSamplesYieldExactPercentiles) {
  // 100 samples: 50x1, 30x2, 15x4, 5x8. Every sample sits exactly on its
  // bucket's lower bound, so nearest-rank percentiles are exact:
  // rank(p50) = 50 -> 1, rank(p95) = 95 -> 4, rank(p99) = 99 -> 8.
  TelemetryHistogram h;
  for (int i = 0; i < 50; ++i) h.record(1.0);
  for (int i = 0; i < 30; ++i) h.record(2.0);
  for (int i = 0; i < 15; ++i) h.record(4.0);
  for (int i = 0; i < 5; ++i) h.record(8.0);

  EXPECT_EQ(h.count(), 100U);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), (50.0 + 60.0 + 60.0 + 40.0) / 100.0);
  EXPECT_EQ(h.percentile(50.0), 1.0);
  EXPECT_EQ(h.percentile(80.0), 2.0);
  EXPECT_EQ(h.percentile(95.0), 4.0);
  EXPECT_EQ(h.percentile(99.0), 8.0);
  EXPECT_EQ(h.percentile(100.0), 8.0);
  EXPECT_EQ(h.bucket_count(1), 50U);
  EXPECT_EQ(h.bucket_count(2), 30U);
  EXPECT_EQ(h.bucket_count(3), 15U);
  EXPECT_EQ(h.bucket_count(4), 5U);
}

TEST(TelemetryHistogramTest, EmptyHistogramReportsZeros) {
  const TelemetryHistogram h;
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

// -------------------------------------------------------------- tracer ----

TEST(PhaseTracerTest, RingOverwritesOldestAndCountsDrops) {
  TracerConfig config;
  config.capacity = 8;
  PhaseTracer tracer(config);
  for (std::size_t i = 0; i < 20; ++i) {
    tracer.record(Phase::kDecide, /*slot=*/i, /*tid=*/0, 100 * i, 100 * i + 7);
  }
  EXPECT_EQ(tracer.size(), 8U);
  EXPECT_EQ(tracer.recorded_total(), 20U);
  EXPECT_EQ(tracer.dropped(), 12U);
  // at() walks oldest-first: spans 12..19 survived.
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_EQ(tracer.at(i).slot, 12 + i);
    EXPECT_EQ(tracer.at(i).dur_ns, 7U);
  }
}

TEST(PhaseTracerTest, SamplingPeriodGatesSpans) {
  TracerConfig config;
  config.sample_period = 4;
  PhaseTracer tracer(config);
  for (std::size_t slot = 0; slot < 16; ++slot) {
    const PhaseSpan span(&tracer, Phase::kDrain, slot, 0);
  }
  EXPECT_EQ(tracer.size(), 4U);  // slots 0, 4, 8, 12
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_EQ(tracer.at(i).slot % 4, 0U);
  }

  // A null tracer records nothing and must be safe.
  { const PhaseSpan span(nullptr, Phase::kDrain, 3, 0); }
  EXPECT_EQ(tracer.recorded_total(), 4U);
}

TEST(PhaseTracerTest, RejectsZeroCapacityOrPeriod) {
  TracerConfig config;
  config.capacity = 0;
  EXPECT_THROW(PhaseTracer{config}, std::invalid_argument);
  config.capacity = 8;
  config.sample_period = 0;
  EXPECT_THROW(PhaseTracer{config}, std::invalid_argument);
}

TEST(PhaseTracerTest, RollupAggregatesPerPhaseAndPerTid) {
  PhaseTracer tracer;
  tracer.record(Phase::kDecide, 0, 0, 0, 3'000);
  tracer.record(Phase::kDecide, 1, 0, 0, 1'000);
  tracer.record(Phase::kDrain, 0, 1, 0, 6'000);

  const CsvTable rollup = tracer.rollup_table();
  ASSERT_EQ(rollup.row_count(), 2U);
  // Registration order of first appearance; shares sum to 100.
  EXPECT_EQ(std::get<std::string>(rollup.at(0, 0)), "decide");
  EXPECT_EQ(std::get<std::int64_t>(rollup.at(0, 1)), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(rollup.at(0, 2)), 4.0);   // total_us
  EXPECT_DOUBLE_EQ(std::get<double>(rollup.at(0, 3)), 2.0);   // mean_us
  EXPECT_DOUBLE_EQ(std::get<double>(rollup.at(0, 4)), 40.0);  // share_pct
  EXPECT_EQ(std::get<std::string>(rollup.at(1, 0)), "drain");
  EXPECT_DOUBLE_EQ(std::get<double>(rollup.at(1, 4)), 60.0);

  const CsvTable by_tid = tracer.rollup_table(/*per_tid=*/true);
  ASSERT_EQ(by_tid.row_count(), 2U);
  EXPECT_EQ(std::get<std::int64_t>(by_tid.at(0, 0)), 0);  // tid column leads
  EXPECT_EQ(std::get<std::int64_t>(by_tid.at(1, 0)), 1);
}

// ------------------------------------------- Chrome trace parse-back ----

/// Minimal scanner for the exported {"traceEvents":[{...},{...}]} shape:
/// splits the top-level array into brace-balanced objects and pulls string/
/// number fields out of each. Deliberately naive — the export writes no
/// nested strings with braces — but strict about structure.
std::vector<std::string> split_trace_events(const std::string& json,
                                            bool* ok) {
  *ok = false;
  std::vector<std::string> events;
  const std::string head = "{\"traceEvents\":[";
  if (json.rfind(head, 0) != 0) return events;
  std::size_t i = head.size();
  int depth = 0;
  std::size_t start = 0;
  for (; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth < 0) return events;
      if (depth == 0) events.push_back(json.substr(start, i - start + 1));
    } else if (depth == 0 && c == ']') {
      break;
    }
  }
  // Must close the array and the outer object.
  *ok = i < json.size() && json.compare(i, 2, "]}") == 0;
  return events;
}

std::string string_field(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = object.find('"', begin);
  return end == std::string::npos ? "" : object.substr(begin, end - begin);
}

bool has_number_field(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return false;
  const char c = object[at + needle.size()];
  return (c >= '0' && c <= '9') || c == '-';
}

TEST(ChromeTraceTest, ExportParsesBackWithAllPhases) {
  PhaseTracer tracer;
  // One span per phase, plus a second decide to check multiplicity.
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    tracer.record(static_cast<Phase>(p), /*slot=*/p, /*tid=*/p, 1'000 * p,
                  1'000 * p + 500);
  }
  tracer.record(Phase::kDecide, 9, 1, 10'000, 10'250);

  bool ok = false;
  const std::vector<std::string> events =
      split_trace_events(tracer.chrome_trace_json(), &ok);
  ASSERT_TRUE(ok) << "malformed trace JSON envelope";
  // Metadata event + 8 spans.
  ASSERT_EQ(events.size(), 9U);
  EXPECT_EQ(string_field(events[0], "ph"), "M");
  EXPECT_EQ(string_field(events[0], "name"), "process_name");

  std::set<std::string> names;
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(string_field(events[i], "ph"), "X");
    EXPECT_TRUE(has_number_field(events[i], "ts"));
    EXPECT_TRUE(has_number_field(events[i], "dur"));
    EXPECT_TRUE(has_number_field(events[i], "tid"));
    EXPECT_TRUE(has_number_field(events[i], "slot"));
    names.insert(string_field(events[i], "name"));
  }
  const std::set<std::string> want{"begin_slot", "decide",  "schedule",
                                   "drain",      "finish",  "place",
                                   "driver_events"};
  EXPECT_EQ(names, want);
}

// ------------------------------------------------------------- config ----

TEST(TelemetryConfigTest, ValidationCatchesMissingPointers) {
  TelemetryConfig config;
  EXPECT_NO_THROW(validate_telemetry(config, "test"));  // off needs nothing

  config.mode = TelemetryMode::kCounters;
  EXPECT_THROW(validate_telemetry(config, "test"), std::invalid_argument);
  TelemetryRegistry registry;
  config.registry = &registry;
  EXPECT_NO_THROW(validate_telemetry(config, "test"));

  config.mode = TelemetryMode::kFullTrace;
  EXPECT_THROW(validate_telemetry(config, "test"), std::invalid_argument);
  PhaseTracer tracer;
  config.tracer = &tracer;
  EXPECT_NO_THROW(validate_telemetry(config, "test"));

  // A misconfigured runtime must refuse construction, not silently drop
  // telemetry.
  ServingConfig serving;
  serving.steps = 4;
  serving.telemetry.mode = TelemetryMode::kCounters;  // registry missing
  EXPECT_THROW(SessionManager(serving, 1e6), std::invalid_argument);
}

// ------------------------------------------------- manager end to end ----

const FrameStatsCache& test_cache() {
  static const FrameStatsCache cache(*open_test_subject(23), 8, 8);
  return cache;
}

TEST(TelemetryEndToEndTest, ManagerCountersMatchRunShape) {
  TelemetryRegistry registry;
  PhaseTracer tracer;
  ServingConfig config;
  config.steps = 40;
  config.candidates = {3, 4, 5, 6};
  config.v = calibrate_streaming_v(test_cache(), config.candidates,
                                   4.0 * test_cache().workload(0).bytes(5));
  config.admission.utilization_target = 1.0;
  config.telemetry.mode = TelemetryMode::kFullTrace;
  config.telemetry.registry = &registry;
  config.telemetry.tracer = &tracer;
  config.telemetry.tid = 3;  // a non-default lane: prefixes must follow

  const std::size_t n = 6;
  const double load = AdmissionController::cheapest_depth_load(
      test_cache(), config.candidates);
  const double capacity = static_cast<double>(n) * load * 2.0;
  SessionManager manager(config, capacity);
  for (std::size_t i = 0; i < n; ++i) {
    SessionSpec spec;
    spec.cache = &test_cache();
    spec.seed = i;
    spec.departure_slot = 20 + i;  // retire mid-run: close counters fire
    manager.submit(spec);
  }
  for (std::size_t t = 0; t < config.steps; ++t) manager.step(capacity);
  const ServingResult result = manager.finish();

  const auto counter = [&](const char* name) {
    const TelemetryCounter* c = registry.find_counter(name);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value() : 0;
  };
  EXPECT_EQ(counter("link3/slots"), config.steps);
  EXPECT_EQ(counter("link3/admission_accepted"), n);
  EXPECT_EQ(counter("link3/admission_rejected"), 0U);
  EXPECT_EQ(counter("link3/sessions_closed"), n);
  // Scheduler calls flushed as per-slot deltas: every slot classified.
  EXPECT_EQ(counter("link3/scheduler_fast_path") +
                counter("link3/scheduler_generic"),
            config.steps);
  // Decide bookkeeping covers exactly the slots with active sessions
  // (0..25: the last departure_slot is 25, closed in slot 25's begin phase,
  // so slot 25 itself decides an empty store and counts nowhere).
  EXPECT_EQ(counter("link3/decide_group_reuses") +
                counter("link3/decide_group_rebuilds"),
            25U);

  const TelemetryHistogram* lifetime =
      registry.find_histogram("link3/session_lifetime_slots");
  ASSERT_NE(lifetime, nullptr);
  EXPECT_EQ(lifetime->count(), n);
  EXPECT_EQ(lifetime->min(), 20.0);
  EXPECT_EQ(lifetime->max(), 25.0);

  const TelemetryHistogram* active =
      registry.find_histogram("link3/active_sessions");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->count(), config.steps);

  // Spans landed on the configured lane with the slot-loop phases present.
  std::set<std::string> phases;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_EQ(tracer.at(i).tid, 3U);
    phases.insert(to_string(tracer.at(i).phase));
  }
  EXPECT_TRUE(phases.count("begin_slot"));
  EXPECT_TRUE(phases.count("decide"));
  EXPECT_TRUE(phases.count("schedule"));
  EXPECT_TRUE(phases.count("drain"));
  EXPECT_TRUE(phases.count("finish"));

  // The run's own accounting agrees.
  EXPECT_EQ(result.admission.accepted, n);
}

// ------------------------------------------------------------- export ----

TEST(TelemetryExportTest, WritersRoundTripThroughDisk) {
  TelemetryRegistry registry;
  registry.counter("a/b").add(7);
  registry.histogram("h").record(2.0);
  PhaseTracer tracer;
  tracer.record(Phase::kSchedule, 1, 0, 0, 1'000);

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(write_chrome_trace(tracer, dir + "/t.json").ok());
  ASSERT_TRUE(write_registry_json(registry, dir + "/r.json").ok());
  ASSERT_TRUE(write_registry_csv(registry, dir + "/reg").ok());

  const Result<CsvTable> counters = read_csv_file(dir + "/reg_counters.csv");
  ASSERT_TRUE(counters.ok()) << counters.status().to_string();
  ASSERT_EQ(counters->row_count(), 1U);
  EXPECT_EQ(std::get<std::string>(counters->at(0, 0)), "a/b");
  EXPECT_EQ(std::get<std::int64_t>(counters->at(0, 1)), 7);

  const Result<CsvTable> histograms =
      read_csv_file(dir + "/reg_histograms.csv");
  ASSERT_TRUE(histograms.ok());
  ASSERT_EQ(histograms->row_count(), 1U);
  EXPECT_EQ(std::get<std::string>(histograms->at(0, 0)), "h");

  // Refusing an unwritable path must surface as a Status, not a throw.
  EXPECT_FALSE(write_chrome_trace(tracer, "/nonexistent-dir/x.json").ok());
}

}  // namespace
}  // namespace arvis
