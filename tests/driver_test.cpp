// Tests for the event-driven workload engine (serving/driver): trace CSV
// round-trip, scenario generator seed-stability and shape, EventLoop
// determinism (same seed => identical snapshot series), idle fast-forward
// equivalence, the flash-crowd acceptance property (admission rejects
// confined to the spike window), the calendar queue's ordering contract,
// incremental-vs-materialized replay equivalence, and the driver-path
// allocation probe (EventLoop + EdgeCluster steady state between arrivals
// is heap-silent).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "datasets/catalog.hpp"
#include "net/channel.hpp"
#include "net/streaming.hpp"
#include "serving/admission.hpp"
#include "serving/driver/calendar.hpp"
#include "serving/driver/event_loop.hpp"
#include "serving/driver/replay.hpp"
#include "serving/driver/scenario.hpp"
#include "serving/driver/trace.hpp"
#include "serving/telemetry/registry.hpp"
#include "support/alloc_probe.hpp"

// The driver steady-state test asserts that extending a run's arrival-free
// tail adds zero allocations (probe shared with cluster_test).
using arvis_test::g_allocations;

namespace arvis {
namespace {

const FrameStatsCache& shared_cache() {
  static const FrameStatsCache cache(*open_test_subject(71), 8, 8);
  return cache;
}

const FrameStatsCache& second_cache() {
  static const FrameStatsCache cache(*open_test_subject(172), 8, 8);
  return cache;
}

double cheapest_load(const std::vector<int>& candidates) {
  return AdmissionController::cheapest_depth_load(shared_cache(), candidates);
}

ScenarioConfig base_scenario() {
  ScenarioConfig config;
  config.horizon = 1'000;
  config.base_rate = 0.02;
  config.mean_duration = 80.0;
  config.max_duration = 200;
  config.profile_count = 2;
  config.seed = 99;
  return config;
}

ClusterConfig replay_cluster_config(std::size_t sessions_per_link) {
  ClusterConfig config;
  config.serving.steps = 400;  // reservation hint only under the driver
  config.serving.candidates = {3, 4, 5, 6};
  config.serving.v =
      calibrate_streaming_v(shared_cache(), config.serving.candidates,
                            4.0 * shared_cache().workload(0).bytes(5));
  config.serving.admission.utilization_target = 1.0;
  config.placement = PlacementPolicy::kLeastLoaded;
  (void)sessions_per_link;
  return config;
}

// ----------------------------------------------------------- Trace I/O ----

WorkloadTrace sample_trace() {
  WorkloadTrace trace;
  trace.events = {
      {0, 40, 0, 1.0, QosClass::kStandard},
      {5, 0, 1, 2.0, QosClass::kPremium},
      {5, 12, 0, 0.5, QosClass::kBestEffort},
      {300, 7, 1, 1.0, QosClass::kStandard},
  };
  return trace;
}

TEST(WorkloadTraceTest, RoundTripsThroughCsvText) {
  const WorkloadTrace trace = sample_trace();
  const std::string csv = trace.to_table().to_string();
  const Result<CsvTable> table = parse_csv(csv);
  ASSERT_TRUE(table.ok()) << table.status().to_string();
  const Result<WorkloadTrace> loaded = parse_workload_trace(*table);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->events, trace.events);
  EXPECT_EQ(loaded->arrival_horizon(), 301U);
}

TEST(WorkloadTraceTest, RoundTripsThroughFile) {
  const WorkloadTrace trace = sample_trace();
  const std::string path = "driver_trace_roundtrip_test.csv";
  ASSERT_TRUE(trace.write_csv_file(path).ok());
  const Result<WorkloadTrace> loaded = load_workload_trace(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->events, trace.events);
}

TEST(WorkloadTraceTest, GeneratedTracesRoundTripExactly) {
  // The acceptance loop: generate -> write CSV -> load -> identical event
  // stream, for every scenario kind (weights survive shortest-round-trip
  // double formatting bit for bit).
  for (ScenarioKind kind :
       {ScenarioKind::kPoisson, ScenarioKind::kBursty, ScenarioKind::kDiurnal,
        ScenarioKind::kFlashCrowd}) {
    const WorkloadTrace trace = make_scenario(kind, base_scenario())->generate();
    ASSERT_FALSE(trace.events.empty()) << to_string(kind);
    const Result<CsvTable> table = parse_csv(trace.to_table().to_string());
    ASSERT_TRUE(table.ok()) << to_string(kind);
    const Result<WorkloadTrace> loaded = parse_workload_trace(*table);
    ASSERT_TRUE(loaded.ok()) << to_string(kind) << ": "
                             << loaded.status().to_string();
    EXPECT_EQ(loaded->events, trace.events) << to_string(kind);
  }
}

TEST(WorkloadTraceTest, ValidationCatchesStructuralErrors) {
  WorkloadTrace unsorted = sample_trace();
  std::swap(unsorted.events[0], unsorted.events[3]);
  EXPECT_FALSE(validate_workload_trace(unsorted).ok());

  WorkloadTrace negative = sample_trace();
  negative.events[1].weight = -1.0;
  EXPECT_FALSE(validate_workload_trace(negative).ok());

  // Profile range is only checkable against a profile table.
  const WorkloadTrace trace = sample_trace();
  EXPECT_TRUE(validate_workload_trace(trace).ok());
  EXPECT_TRUE(validate_workload_trace(trace, 2).ok());
  EXPECT_FALSE(validate_workload_trace(trace, 1).ok());

  EXPECT_TRUE(parse_qos_class("premium").ok());
  EXPECT_FALSE(parse_qos_class("platinum").ok());

  // A parsed trace is always structurally sound: bad rows fail the parse.
  CsvTable bad_qos({"t_arrive", "duration", "profile", "weight", "qos"});
  bad_qos.add_row({std::int64_t{0}, std::int64_t{5}, std::int64_t{0}, 1.0,
                   std::string("platinum")});
  EXPECT_FALSE(parse_workload_trace(bad_qos).ok());

  CsvTable wrong_header({"when", "how_long"});
  EXPECT_FALSE(parse_workload_trace(wrong_header).ok());
}

TEST(WorkloadTraceTest, CloseColumnRoundTripsAndStaysOptional) {
  // Without closes, serialization is the legacy five-column file byte for
  // byte — older tools keep parsing what we write.
  const WorkloadTrace legacy = sample_trace();
  const std::string five_cols = legacy.to_table().to_string();
  EXPECT_EQ(five_cols.find("t_close"), std::string::npos);
  EXPECT_EQ(five_cols.substr(0, five_cols.find('\n')),
            "t_arrive,duration,profile,weight,qos");

  // With a close anywhere, the sixth column rides for every row and the
  // events round-trip exactly (t_close == 0 rows included).
  WorkloadTrace closing = sample_trace();
  closing.events[1].t_close = 30;
  const std::string six_cols = closing.to_table().to_string();
  EXPECT_EQ(six_cols.substr(0, six_cols.find('\n')),
            "t_arrive,duration,profile,weight,qos,t_close");
  const Result<CsvTable> table = parse_csv(six_cols);
  ASSERT_TRUE(table.ok());
  const Result<WorkloadTrace> loaded = parse_workload_trace(*table);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->events, closing.events);

  // The validator rejects a close at or before its arrival.
  WorkloadTrace too_early = sample_trace();
  too_early.events[3].t_close = too_early.events[3].t_arrive;
  EXPECT_FALSE(validate_workload_trace(too_early).ok());
  too_early.events[3].t_close = too_early.events[3].t_arrive + 1;
  EXPECT_TRUE(validate_workload_trace(too_early).ok());

  // And the parser runs the same validation on loaded files.
  CsvTable bad({"t_arrive", "duration", "profile", "weight", "qos",
                "t_close"});
  bad.add_row({std::int64_t{10}, std::int64_t{5}, std::int64_t{0}, 1.0,
               std::string("standard"), std::int64_t{10}});
  EXPECT_FALSE(parse_workload_trace(bad).ok());
}

TEST(EventLoopTest, TraceClosesEndSessionsEarly) {
  // Two sessions arriving together; one abandons at slot 20, far before its
  // nominal departure. The replayer must apply exactly one external close
  // and the cluster's books must show the shortened lifetime.
  WorkloadTrace trace;
  trace.events = {{0, 100, 0, 1.0, QosClass::kStandard, 20},
                  {0, 100, 0, 1.0, QosClass::kStandard, 0}};

  ReplayConfig config;
  config.cluster = replay_cluster_config(2);
  config.driver.snapshot_period = 50;
  const double capacity =
      3.0 * cheapest_load(config.cluster.serving.candidates);
  ConstantChannel channel(capacity);
  std::vector<ChannelModel*> channels{&channel};
  const std::vector<const FrameStatsCache*> profiles{&shared_cache()};
  const ReplayResult result = replay_trace(config, trace, profiles, channels);

  EXPECT_EQ(result.report.closes_applied, 1U);
  ASSERT_EQ(result.cluster.sessions.size(), 2U);
  EXPECT_TRUE(result.cluster.sessions[0].session.admitted);
  EXPECT_TRUE(result.cluster.sessions[1].session.admitted);
  // The abandoning session streamed ~20 slots; its sibling ran the full
  // 100-slot duration.
  EXPECT_LE(result.cluster.sessions[0].session.trace.size(), 21U);
  EXPECT_GT(result.cluster.sessions[1].session.trace.size(), 90U);
}

// ----------------------------------------------------------- Generators ----

TEST(ScenarioGeneratorTest, SameSeedSameTraceDifferentSeedDifferentTrace) {
  for (ScenarioKind kind :
       {ScenarioKind::kPoisson, ScenarioKind::kBursty, ScenarioKind::kDiurnal,
        ScenarioKind::kFlashCrowd}) {
    ScenarioConfig config = base_scenario();
    const WorkloadTrace a = make_scenario(kind, config)->generate();
    const WorkloadTrace b = make_scenario(kind, config)->generate();
    EXPECT_EQ(a.events, b.events) << to_string(kind);
    config.seed = 100;
    const WorkloadTrace c = make_scenario(kind, config)->generate();
    EXPECT_NE(a.events, c.events) << to_string(kind);
  }
}

TEST(ScenarioGeneratorTest, PoissonCountTracksRate) {
  ScenarioConfig config = base_scenario();
  config.horizon = 20'000;
  const WorkloadTrace trace =
      make_scenario(ScenarioKind::kPoisson, config)->generate();
  const double expected = config.base_rate * static_cast<double>(config.horizon);
  EXPECT_GT(static_cast<double>(trace.events.size()), 0.7 * expected);
  EXPECT_LT(static_cast<double>(trace.events.size()), 1.3 * expected);
  // Attributes respect their knobs.
  for (const TraceEvent& e : trace.events) {
    EXPECT_LT(e.t_arrive, config.horizon);
    EXPECT_GE(e.duration, 1U);
    EXPECT_LE(e.duration, config.max_duration);
    EXPECT_LT(e.profile, config.profile_count);
    EXPECT_EQ(e.weight, default_qos_weight(e.qos));
  }
}

TEST(ScenarioGeneratorTest, DiurnalPeakHalfOutdrawsTroughHalf) {
  ScenarioConfig config = base_scenario();
  config.horizon = 10'000;
  config.diurnal_period = 1'000;
  config.diurnal_amplitude = 0.9;
  const WorkloadTrace trace =
      make_scenario(ScenarioKind::kDiurnal, config)->generate();
  // sin > 0 on the first half of each period: that half should hold clearly
  // more arrivals than the second.
  std::size_t peak = 0, trough = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.t_arrive % config.diurnal_period < config.diurnal_period / 2) {
      ++peak;
    } else {
      ++trough;
    }
  }
  EXPECT_GT(peak, trough + trough / 2);
}

TEST(ScenarioGeneratorTest, FlashCrowdConcentratesInSpikeWindow) {
  ScenarioConfig config = base_scenario();
  config.horizon = 4'000;
  config.spike_duration = 100;
  config.spike_multiplier = 25.0;
  const WorkloadTrace trace =
      make_scenario(ScenarioKind::kFlashCrowd, config)->generate();
  const std::size_t spike_start = config.resolved_spike_start();
  const std::size_t spike_end = spike_start + config.spike_duration;
  std::size_t inside = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.t_arrive >= spike_start && e.t_arrive < spike_end) ++inside;
  }
  const std::size_t outside = trace.events.size() - inside;
  // 100 spike slots at 25x the base rate carry more mass than the other
  // 3,900 slots combined (expected 50 vs 78; per-slot density ~25x).
  const double inside_density = static_cast<double>(inside) / 100.0;
  const double outside_density = static_cast<double>(outside) / 3'900.0;
  EXPECT_GT(inside_density, 10.0 * outside_density);
  EXPECT_GT(inside, 20U);
}

TEST(ScenarioGeneratorTest, BurstyAlternatesBurstsAndSilencePreservingMean) {
  ScenarioConfig config = base_scenario();
  config.horizon = 20'000;
  config.base_rate = 0.05;
  config.p_on_to_off = 0.1;
  config.p_off_to_on = 0.02;  // pi_on = 1/6 -> ON rate = 0.3
  const WorkloadTrace trace =
      make_scenario(ScenarioKind::kBursty, config)->generate();
  // Mean-preserving: the bursty kind offers the same long-run volume as a
  // stationary Poisson at base_rate, just clumped.
  const double expected = config.base_rate * static_cast<double>(config.horizon);
  EXPECT_GT(static_cast<double>(trace.events.size()), 0.6 * expected);
  EXPECT_LT(static_cast<double>(trace.events.size()), 1.4 * expected);
  // ON dwell ~10 slots at rate 0.3, OFF dwell ~50 slots: the trace must show
  // at least one inter-arrival gap far longer than the ON-state spacing.
  std::size_t max_gap = 0;
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    max_gap = std::max(max_gap,
                       trace.events[i].t_arrive - trace.events[i - 1].t_arrive);
  }
  EXPECT_GT(max_gap, 40U);

  config.p_off_to_on = 0.0;  // never ON: cannot deliver base_rate
  EXPECT_THROW(make_scenario(ScenarioKind::kBursty, config)->generate(),
               std::invalid_argument);
}

TEST(ScenarioGeneratorTest, ConfigValidation) {
  ScenarioConfig config = base_scenario();
  config.horizon = 0;
  EXPECT_THROW(PoissonScenario{config}, std::invalid_argument);
  config = base_scenario();
  config.base_rate = -0.1;
  EXPECT_THROW(PoissonScenario{config}, std::invalid_argument);
  config = base_scenario();
  config.mean_duration = 0.5;
  EXPECT_THROW(PoissonScenario{config}, std::invalid_argument);
  config = base_scenario();
  config.profile_count = 0;
  EXPECT_THROW(PoissonScenario{config}, std::invalid_argument);
  config = base_scenario();
  config.best_effort_fraction = 0.8;
  config.premium_fraction = 0.3;
  EXPECT_THROW(PoissonScenario{config}, std::invalid_argument);
}

// ------------------------------------------------------------ EventLoop ----

std::vector<const FrameStatsCache*> two_profiles() {
  return {&shared_cache(), &second_cache()};
}

/// A flash-crowd replay setup: K=2 links that comfortably fit the sparse
/// base churn, overwhelmed during the spike.
struct FlashCrowdFixture {
  ScenarioConfig scenario;
  ReplayConfig replay;
  WorkloadTrace trace;
  double per_link_capacity = 0.0;

  FlashCrowdFixture() {
    scenario = base_scenario();
    scenario.horizon = 2'000;
    scenario.base_rate = 0.002;
    scenario.mean_duration = 40.0;
    scenario.max_duration = 80;
    scenario.spike_duration = 60;
    scenario.spike_multiplier = 150.0;
    scenario.seed = 7;
    trace = make_scenario(ScenarioKind::kFlashCrowd, scenario)->generate();

    replay.cluster = replay_cluster_config(2);
    replay.driver.snapshot_period = 25;
    const double load = cheapest_load(replay.cluster.serving.candidates);
    per_link_capacity = 2.5 * load;  // two cheapest-depth sessions per link
  }

  [[nodiscard]] ReplayResult run() const {
    ConstantChannel a(per_link_capacity), b(per_link_capacity);
    std::vector<ChannelModel*> channels{&a, &b};
    return replay_trace(replay, trace, two_profiles(), channels);
  }
};

TEST(EventLoopTest, FlashCrowdReplayIsSeedStable) {
  const FlashCrowdFixture fixture;
  const ReplayResult first = fixture.run();
  const ReplayResult second = fixture.run();

  // Identical snapshot series, field for field, bit for bit.
  ASSERT_FALSE(first.report.snapshots.empty());
  ASSERT_EQ(first.report.snapshots.size(), second.report.snapshots.size());
  for (std::size_t i = 0; i < first.report.snapshots.size(); ++i) {
    const MetricsSnapshot& a = first.report.snapshots[i];
    const MetricsSnapshot& b = second.report.snapshots[i];
    EXPECT_EQ(a.slot, b.slot);
    EXPECT_EQ(a.active_sessions, b.active_sessions);
    EXPECT_EQ(a.admitted_total, b.admitted_total);
    EXPECT_EQ(a.rejected_total, b.rejected_total);
    EXPECT_EQ(a.capacity_offered_total, b.capacity_offered_total);
    EXPECT_EQ(a.capacity_used_total, b.capacity_used_total);
    EXPECT_EQ(a.window_utilization, b.window_utilization);
    EXPECT_EQ(a.link_load_fairness, b.link_load_fairness);
  }
  EXPECT_EQ(first.report.slots_executed, second.report.slots_executed);
  EXPECT_EQ(first.cluster.metrics.fleet.capacity_used,
            second.cluster.metrics.fleet.capacity_used);
  EXPECT_EQ(first.cluster.metrics.fleet.quality_fairness,
            second.cluster.metrics.fleet.quality_fairness);
}

TEST(EventLoopTest, FlashCrowdRejectsOnlyDuringSpikeWindow) {
  const FlashCrowdFixture fixture;
  const ReplayResult result = fixture.run();

  // The spike overloads the cluster: some sessions are refused outright.
  EXPECT_GT(result.cluster.metrics.placement_rejects, 0U);
  // All arrivals reached the cluster (no stop event) and the books balance.
  EXPECT_EQ(result.report.arrivals_injected, fixture.trace.events.size());
  std::size_t admitted = 0, rejected = 0, arrivals = 0;
  for (const QosOutcome& tier : result.per_qos) {
    arrivals += tier.arrivals;
    admitted += tier.admitted;
    rejected += tier.rejected;
  }
  EXPECT_EQ(arrivals, fixture.trace.events.size());
  EXPECT_EQ(admitted + rejected, arrivals);
  EXPECT_EQ(rejected, result.cluster.metrics.placement_rejects);

  // Rejects are confined to the spike: a session admitted during the spike
  // can hold its link for up to max_duration slots past the window, so the
  // tolerance band is [spike_start, spike_end + max_duration). Snapshot
  // windows entirely outside that band must show zero new rejects.
  const std::size_t spike_start = fixture.scenario.resolved_spike_start();
  const std::size_t spike_end =
      spike_start + fixture.scenario.spike_duration;
  const std::size_t drain_end = spike_end + fixture.scenario.max_duration;
  std::size_t prev_rejects = 0, prev_slot = 0;
  std::size_t rejects_in_band = 0;
  for (const MetricsSnapshot& s : result.report.snapshots) {
    const std::size_t delta = s.rejected_total - prev_rejects;
    const bool window_outside_band =
        s.slot <= spike_start || prev_slot >= drain_end;
    if (window_outside_band) {
      EXPECT_EQ(delta, 0U) << "rejects in (" << prev_slot << ", " << s.slot
                           << "]";
    } else {
      rejects_in_band += delta;
    }
    prev_rejects = s.rejected_total;
    prev_slot = s.slot;
  }
  EXPECT_EQ(rejects_in_band, result.cluster.metrics.placement_rejects);
}

TEST(EventLoopTest, SkipIdleMatchesDenseExecutionOnConstantChannels) {
  // One short session deep into an otherwise idle calendar: fast-forwarding
  // the idle stretch must not change a bit of what the session experiences
  // on a constant-capacity link — only how many empty slots burned.
  WorkloadTrace trace;
  trace.events = {{400, 20, 0, 1.0, QosClass::kStandard}};

  ReplayConfig config;
  config.cluster = replay_cluster_config(2);
  config.driver.snapshot_period = 100;
  const double capacity =
      3.0 * cheapest_load(config.cluster.serving.candidates);
  const std::vector<const FrameStatsCache*> profiles{&shared_cache()};

  config.driver.skip_idle = true;
  ConstantChannel skip_channel(capacity);
  std::vector<ChannelModel*> skip_channels{&skip_channel};
  const ReplayResult skipped =
      replay_trace(config, trace, profiles, skip_channels);

  config.driver.skip_idle = false;
  ConstantChannel dense_channel(capacity);
  std::vector<ChannelModel*> dense_channels{&dense_channel};
  const ReplayResult dense =
      replay_trace(config, trace, profiles, dense_channels);

  // The idle 400 slots were skipped, not served. 21 slots execute, not 20:
  // the departure itself closes inside slot 420's begin phase, so the final
  // slot runs (empty) to retire the session.
  EXPECT_EQ(skipped.report.slots_executed, 21U);
  EXPECT_EQ(skipped.report.slots_skipped, 400U);
  EXPECT_EQ(dense.report.slots_executed, 421U);
  EXPECT_EQ(dense.report.slots_skipped, 0U);
  EXPECT_EQ(skipped.report.arrivals_injected, 1U);
  EXPECT_EQ(skipped.report.departure_markers, 1U);

  // The session's run is bit-identical either way.
  ASSERT_EQ(skipped.cluster.sessions.size(), 1U);
  ASSERT_EQ(dense.cluster.sessions.size(), 1U);
  const Trace& a = skipped.cluster.sessions[0].session.trace;
  const Trace& b = dense.cluster.sessions[0].session.trace;
  ASSERT_EQ(a.size(), 20U);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.at(t).depth, b.at(t).depth);
    EXPECT_EQ(a.at(t).service, b.at(t).service);
    EXPECT_EQ(a.at(t).backlog_end, b.at(t).backlog_end);
    EXPECT_EQ(a.at(t).quality, b.at(t).quality);
  }
  EXPECT_EQ(skipped.cluster.metrics.fleet.capacity_used,
            dense.cluster.metrics.fleet.capacity_used);
  // Skipped slots offered no capacity; dense ones drew the channel each slot.
  EXPECT_LT(skipped.cluster.metrics.fleet.capacity_offered,
            dense.cluster.metrics.fleet.capacity_offered);

  // Snapshots punctuated the idle gap on schedule (slots 100, 200, ...).
  ASSERT_GE(skipped.report.snapshots.size(), 4U);
  ASSERT_GE(dense.report.snapshots.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(skipped.report.snapshots[i].slot, 100 * (i + 1));
    EXPECT_EQ(skipped.report.snapshots[i].rejected_total, 0U);
    // Both runs report utilization 0 across the gap; offered_bytes is what
    // tells them apart — the skipped run's windows offered nothing (idle),
    // the dense run executed the empty slots and drew capacity each one.
    EXPECT_EQ(skipped.report.snapshots[i].window_utilization, 0.0);
    EXPECT_EQ(skipped.report.snapshots[i].window_offered_bytes, 0.0);
    EXPECT_EQ(dense.report.snapshots[i].window_utilization, 0.0);
    EXPECT_GT(dense.report.snapshots[i].window_offered_bytes, 0.0);
  }
  // And the snapshot CSV is rectangular with the documented columns.
  const CsvTable table = skipped.report.snapshot_table();
  EXPECT_EQ(table.row_count(), skipped.report.snapshots.size());
  EXPECT_EQ(table.column_count(), 9U);
}

TEST(EventLoopTest, StopEventCutsTheTailAndKeepsAccountingConsistent) {
  // Three arrivals; a stop before the third's slot. The tail session is
  // neither admitted nor rejected — placement never saw it.
  WorkloadTrace trace;
  trace.events = {{0, 50, 0, 1.0, QosClass::kStandard},
                  {10, 50, 0, 1.0, QosClass::kPremium},
                  {600, 50, 0, 1.0, QosClass::kBestEffort}};
  ReplayConfig config;
  config.cluster = replay_cluster_config(2);
  config.stop_slot = 100;
  config.driver.skip_idle = false;  // dense: exactly 100 slots execute
  const double capacity =
      3.0 * cheapest_load(config.cluster.serving.candidates);
  ConstantChannel channel(capacity);
  std::vector<ChannelModel*> channels{&channel};
  const std::vector<const FrameStatsCache*> profiles{&shared_cache()};
  const ReplayResult result = replay_trace(config, trace, profiles, channels);

  EXPECT_EQ(result.report.slots_executed, 100U);
  EXPECT_EQ(result.report.arrivals_injected, 2U);
  std::size_t arrivals = 0, admitted = 0, rejected = 0;
  for (const QosOutcome& tier : result.per_qos) {
    arrivals += tier.arrivals;
    admitted += tier.admitted;
    rejected += tier.rejected;
  }
  // The cut-off row counts nowhere: the per-tier books balance on what the
  // cluster actually saw.
  EXPECT_EQ(arrivals, 2U);
  EXPECT_EQ(admitted, 2U);
  EXPECT_EQ(rejected, 0U);
  EXPECT_EQ(result.per_qos[static_cast<std::size_t>(QosClass::kBestEffort)]
                .arrivals,
            0U);
}

TEST(EventLoopTest, DrainedOpenLoopRunIgnoresAFarStopCeiling) {
  // In idle-skip mode a stop is only a ceiling: once the churn drains, the
  // run ends instead of skipping a phantom idle tail to the stop slot (and
  // padding the snapshot series with empty windows on the way).
  WorkloadTrace trace;
  trace.events = {{0, 20, 0, 1.0, QosClass::kStandard}};
  ReplayConfig config;
  config.cluster = replay_cluster_config(2);
  config.stop_slot = 10'000;
  config.driver.snapshot_period = 100;
  const double capacity =
      3.0 * cheapest_load(config.cluster.serving.candidates);
  ConstantChannel channel(capacity);
  std::vector<ChannelModel*> channels{&channel};
  const std::vector<const FrameStatsCache*> profiles{&shared_cache()};
  const ReplayResult result = replay_trace(config, trace, profiles, channels);

  EXPECT_EQ(result.report.slots_executed, 21U);
  EXPECT_EQ(result.report.slots_skipped, 0U);
  EXPECT_TRUE(result.report.snapshots.empty());  // drained before slot 100
  EXPECT_FALSE(result.report.hit_slot_cap);
}

TEST(EventLoopTest, ReplayValidatesItsInputs) {
  const WorkloadTrace trace = sample_trace();  // uses profile ids {0, 1}
  ReplayConfig config;
  config.cluster = replay_cluster_config(2);
  ConstantChannel channel(1e6);
  std::vector<ChannelModel*> channels{&channel};

  // Profile id out of range for the supplied table.
  const std::vector<const FrameStatsCache*> one_profile{&shared_cache()};
  EXPECT_THROW(replay_trace(config, trace, one_profile, channels),
               std::invalid_argument);
  EXPECT_THROW(replay_trace(config, trace, {}, channels),
               std::invalid_argument);
  EXPECT_THROW(replay_trace(config, trace, two_profiles(), {}),
               std::invalid_argument);
  std::vector<ChannelModel*> null_channel{nullptr};
  EXPECT_THROW(replay_trace(config, trace, two_profiles(), null_channel),
               std::invalid_argument);
}

TEST(EventLoopTest, PublicSchedulingIsClosedOnceRunStarts) {
  ServingConfig serving = replay_cluster_config(1).serving;
  SessionManager manager(serving, 1e6);
  ConstantChannel channel(1e6);
  SessionManagerBackend backend(manager, channel);
  EventLoop loop(DriverConfig{}, backend);
  SessionSpec spec;
  spec.cache = &shared_cache();
  loop.schedule_arrival(0, spec);
  loop.schedule_stop(10);
  loop.run();
  // The whole public scheduling surface throws after run() — including
  // departure markers, which only the loop's own source feed may push
  // mid-run.
  EXPECT_THROW(loop.schedule_arrival(20, spec), std::logic_error);
  EXPECT_THROW(loop.schedule_departure_marker(20), std::logic_error);
  EXPECT_THROW(loop.schedule_stop(20), std::logic_error);
  EXPECT_THROW(loop.run(), std::logic_error);
}

// -------------------------------------------------------- EventCalendar ----

TEST(EventCalendarTest, DrainsInSlotSeqOrderLikeAPriorityQueue) {
  Rng rng(2024);
  EventCalendar calendar;
  std::vector<CalendarEvent> reference;
  std::vector<CalendarEvent> drained;
  std::vector<CalendarEvent> due;
  std::uint64_t seq = 0;
  std::size_t now = 0;

  // Bursty pushes against an advancing clock (enough volume to force
  // several rehash growths), drained exactly the way the EventLoop drains.
  for (int round = 0; round < 300; ++round) {
    const std::size_t pushes = rng.below(8);
    for (std::size_t p = 0; p < pushes; ++p) {
      CalendarEvent event;
      event.slot = now + rng.below(40);
      event.seq = seq++;
      event.kind = static_cast<std::uint8_t>(rng.below(4));
      event.payload = p;
      calendar.push(event);
      reference.push_back(event);
    }
    now += rng.below(3);
    calendar.pop_due(now, due);
    drained.insert(drained.end(), due.begin(), due.end());
  }

  // Flush the queued tail (slots reach at most now + 39).
  calendar.pop_due(now + 64, due);
  drained.insert(drained.end(), due.begin(), due.end());
  ASSERT_TRUE(calendar.empty());

  // Far-future event after a long idle gap: min_slot must find it without
  // a year's worth of bucket probes going wrong.
  CalendarEvent far;
  far.slot = now + 1'000'000;
  far.seq = seq++;
  calendar.push(far);
  reference.push_back(far);
  EXPECT_EQ(calendar.min_slot(), far.slot);
  calendar.pop_due(far.slot, due);
  drained.insert(drained.end(), due.begin(), due.end());
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.min_slot(), EventCalendar::kNone);

  // The contract the priority_queue gave the loop: ascending (slot, seq).
  std::sort(reference.begin(), reference.end(),
            [](const CalendarEvent& a, const CalendarEvent& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              return a.seq < b.seq;
            });
  ASSERT_EQ(drained.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(drained[i].slot, reference[i].slot) << i;
    EXPECT_EQ(drained[i].seq, reference[i].seq) << i;
  }
}

TEST(EventCalendarTest, FarFutureEventsBeyondTheBucketHorizon) {
  // Ring starts at 64 buckets; an event whole ring-revolutions past the
  // floor can only be found by the fallback full scan. Interleave near and
  // far events and make sure min_slot()/pop_due() never lose or reorder one.
  EventCalendar calendar;
  std::vector<CalendarEvent> due;
  std::uint64_t seq = 0;
  calendar.push({5, seq++, 0, 0});
  calendar.push({5 + 64 * 1000, seq++, 0, 1});     // ~1000 revolutions out
  calendar.push({5 + 64 * 500 + 3, seq++, 0, 2});  // between the two
  EXPECT_EQ(calendar.min_slot(), 5u);

  calendar.pop_due(5, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].payload, 0u);
  // Next minimum is half a million slots away: the day-order probe gives up
  // after one revolution and the full scan must take over.
  EXPECT_EQ(calendar.min_slot(), 5u + 64 * 500 + 3);

  calendar.pop_due(5 + 64 * 1000, due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].payload, 2u);
  EXPECT_EQ(due[1].payload, 1u);
  EXPECT_TRUE(calendar.empty());

  // A push far below the current floor must still surface first.
  calendar.push({64 * 2000, seq++, 0, 3});
  calendar.push({7, seq++, 0, 4});
  EXPECT_EQ(calendar.min_slot(), 7u);
  calendar.pop_due(64 * 2000, due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].payload, 4u);
  EXPECT_EQ(due[1].payload, 3u);
}

TEST(EventCalendarTest, SameSlotOrderingSurvivesBucketWrap) {
  // Slots s, s+64, s+128 share one bucket of the initial 64-wide ring.
  // Within every slot, drain order must stay push order — including for
  // events pushed after the clock already wrapped the ring once, which
  // appends them behind older same-bucket events of *later* slots.
  EventCalendar calendar;
  std::vector<CalendarEvent> due;
  std::uint64_t seq = 0;
  const std::size_t s = 10;
  calendar.push({s + 64, seq++, 0, 100});   // future year, pushed first
  calendar.push({s, seq++, 0, 0});
  calendar.push({s, seq++, 0, 1});
  calendar.push({s + 128, seq++, 0, 200});  // two years out, same bucket

  calendar.pop_due(s, due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].payload, 0u);
  EXPECT_EQ(due[1].payload, 1u);

  // The clock wrapped the ring: new same-slot pushes at s+64 must drain in
  // push order behind nothing (the compaction preserved relative order).
  calendar.push({s + 64, seq++, 0, 101});
  calendar.push({s + 64, seq++, 0, 102});
  calendar.pop_due(s + 64, due);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].payload, 100u);
  EXPECT_EQ(due[1].payload, 101u);
  EXPECT_EQ(due[2].payload, 102u);

  calendar.pop_due(s + 128, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].payload, 200u);
  EXPECT_TRUE(calendar.empty());
}

TEST(EventCalendarTest, ReserveThenBurstGrowthKeepsTheOrderingContract) {
  // reserve() sizes the ring for a burst; pushing well past the reservation
  // forces mid-stream rehash growth. Ordering must survive both the
  // reserved phase and every growth rehash.
  Rng rng(7);
  EventCalendar calendar;
  calendar.reserve(128);
  std::vector<CalendarEvent> reference;
  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < 3'000; ++i) {  // ~23x the reservation
    CalendarEvent event;
    event.slot = rng.below(400);
    event.seq = seq++;
    event.payload = i;
    calendar.push(event);
    reference.push_back(event);
  }
  EXPECT_EQ(calendar.size(), reference.size());
  // A late reserve() on a populated calendar is a rehash too.
  calendar.reserve(8'192);

  std::vector<CalendarEvent> drained;
  std::vector<CalendarEvent> due;
  calendar.pop_due(400, due);
  drained.insert(drained.end(), due.begin(), due.end());
  ASSERT_TRUE(calendar.empty());

  std::sort(reference.begin(), reference.end(),
            [](const CalendarEvent& a, const CalendarEvent& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              return a.seq < b.seq;
            });
  ASSERT_EQ(drained.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_EQ(drained[i].slot, reference[i].slot) << i;
    ASSERT_EQ(drained[i].seq, reference[i].seq) << i;
  }
}

// ------------------------------------------------ external-close events ----

TEST(EventLoopTest, ExternalCloseEndsASessionMidStreamAndCancelsPending) {
  const std::vector<int> candidates{3, 4, 5, 6};
  ServingConfig config;
  config.steps = 64;
  config.candidates = candidates;
  config.v = calibrate_streaming_v(shared_cache(), candidates,
                                   4.0 * shared_cache().workload(0).bytes(5));
  config.admission.utilization_target = 1.0;
  const double capacity = 8.0 * cheapest_load(candidates);
  ConstantChannel channel(capacity);
  SessionManager manager(config, capacity);

  SessionSpec spec;
  spec.cache = &shared_cache();
  manager.submit(spec);  // id 0: closed mid-stream at slot 30
  manager.submit(spec);  // id 1: streams to the stop
  SessionSpec late = spec;
  late.arrival_slot = 40;
  manager.submit(late);  // id 2: cancelled (close fires before it arrives)

  DriverConfig driver;
  SessionManagerBackend backend(manager, channel);
  EventLoop loop(driver, backend);
  loop.schedule_close(30, 0);
  loop.schedule_close(20, 2);
  loop.schedule_close(15, 99);  // unknown id: counted, not fatal
  loop.schedule_stop(60);
  const DriverReport report = loop.run();
  EXPECT_EQ(report.closes_applied, 2u);
  EXPECT_EQ(report.closes_ignored, 1u);
  EXPECT_EQ(report.slots_executed, 60u);

  const ServingResult result = manager.finish();
  ASSERT_EQ(result.sessions.size(), 3u);
  // Mid-stream close: departed at the close slot, trace covers [0, 30).
  EXPECT_TRUE(result.sessions[0].admitted);
  EXPECT_EQ(result.sessions[0].departure_slot, 30u);
  EXPECT_EQ(result.sessions[0].trace.size(), 30u);
  // Untouched: streams the whole horizon.
  EXPECT_TRUE(result.sessions[1].admitted);
  EXPECT_EQ(result.sessions[1].trace.size(), 60u);
  // Cancelled before arrival: admission never saw it.
  EXPECT_FALSE(result.sessions[2].admitted);
  EXPECT_TRUE(result.sessions[2].trace.empty());
  EXPECT_EQ(result.admission.attempts, 2u);
}

TEST(EventLoopTest, ExternalCloseOnAClusterClosesOnTheOwningLink) {
  ClusterConfig config = replay_cluster_config(4);
  config.serving.steps = 48;
  const double capacity =
      6.0 * cheapest_load(config.serving.candidates);
  ConstantChannel a(capacity), b(capacity);
  EdgeCluster cluster(config, {capacity, capacity});

  // Id 0 is submitted first but *arrives last* (slot 6): placement creates
  // it on its link after ids 1..4, so the link's slab holds out-of-order
  // ids — the close lookup must not assume id-sorted slabs.
  SessionSpec late;
  late.cache = &shared_cache();
  late.arrival_slot = 6;
  cluster.submit(late);  // id 0
  SessionSpec spec;
  spec.cache = &shared_cache();
  for (int i = 0; i < 4; ++i) cluster.submit(spec);  // ids 1..4

  DriverConfig driver;
  ClusterBackend backend(cluster, {&a, &b});
  EventLoop loop(driver, backend);
  loop.schedule_close(12, 4);
  loop.schedule_close(20, 0);  // the out-of-order slab entry
  loop.schedule_stop(40);
  const DriverReport report = loop.run();
  EXPECT_EQ(report.closes_applied, 2u);
  EXPECT_EQ(report.closes_ignored, 0u);

  const ClusterResult result = cluster.finish();
  ASSERT_EQ(result.sessions.size(), 5u);
  EXPECT_TRUE(result.sessions[4].session.admitted);
  EXPECT_EQ(result.sessions[4].session.departure_slot, 12u);
  EXPECT_EQ(result.sessions[4].session.trace.size(), 12u);
  EXPECT_TRUE(result.sessions[0].session.admitted);
  EXPECT_EQ(result.sessions[0].session.arrival_slot, 6u);
  EXPECT_EQ(result.sessions[0].session.departure_slot, 20u);
  EXPECT_EQ(result.sessions[0].session.trace.size(), 14u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(result.sessions[i].session.trace.size(), 40u) << i;
  }
}

// ------------------------------------------------ decide-memo telemetry ----

// The decide-memo counters must agree with an oracle derived purely from the
// emitted traces: the store reuses its grouping when membership is unchanged
// AND no session's backlog bits moved during the previous drain; otherwise it
// rebuilds. A 1-frame cache makes arrivals depth-constant, so once every
// session fully drains each slot the backlog reaches a bit-stable fixed point
// and the memo should hit on (nearly) every subsequent slot.
TEST(EventLoopTest, DecideMemoCountersMatchTraceOracle) {
  static const FrameStatsCache mono(*open_test_subject(71), 8,
                                    /*frame_limit=*/1);
  const std::vector<int> candidates{3, 4, 5, 6};
  ServingConfig config;
  config.steps = 60;
  config.candidates = candidates;
  // A near-zero V pins the argmax to the cheapest depth whenever backlog is
  // positive; a calibrated V would ride a depth limit cycle whose backlog
  // never bit-stabilizes, so the memo would (correctly) never hit.
  config.v = 1e-6;
  config.admission.utilization_target = 1.0;
  TelemetryRegistry registry;
  config.telemetry.mode = TelemetryMode::kCounters;
  config.telemetry.registry = &registry;

  // Capacity far above worst-case arrivals: every session drains fully
  // every slot, so the backlog hits the fixed point q = a(cheapest).
  const std::size_t n = 12;
  const double capacity =
      200.0 * static_cast<double>(n) *
      AdmissionController::cheapest_depth_load(mono, candidates);
  ConstantChannel channel(capacity);
  SessionManager manager(config, capacity);
  SessionSpec spec;
  spec.cache = &mono;
  for (std::size_t i = 0; i < n; ++i) {
    spec.seed = i;
    manager.submit(spec);
  }

  DriverConfig driver;
  SessionManagerBackend backend(manager, channel);
  EventLoop loop(driver, backend);
  loop.schedule_stop(config.steps);
  loop.run();
  const ServingResult result = manager.finish();
  ASSERT_EQ(result.sessions.size(), n);
  for (const auto& s : result.sessions) {
    ASSERT_TRUE(s.admitted);
    ASSERT_EQ(s.trace.size(), config.steps);
  }

  // Replay the memo rule from the traces alone (membership is constant, so
  // only backlog-bit movement forces a rebuild; the flag clears on rebuild).
  std::size_t want_reuses = 0;
  std::size_t want_rebuilds = 0;
  bool have_groups = false;
  bool dirty = false;
  for (std::size_t t = 0; t < config.steps; ++t) {
    if (have_groups && !dirty) {
      ++want_reuses;
    } else {
      ++want_rebuilds;
      have_groups = true;
      dirty = false;
    }
    for (const auto& s : result.sessions) {
      const StepRecord& rec = s.trace.at(t);
      if (std::bit_cast<std::uint64_t>(rec.backlog_begin) !=
          std::bit_cast<std::uint64_t>(rec.backlog_end)) {
        dirty = true;
      }
    }
  }

  const auto counter = [&](const char* name) {
    const TelemetryCounter* c = registry.find_counter(name);
    EXPECT_NE(c, nullptr) << name;
    return c != nullptr ? c->value() : 0;
  };
  EXPECT_EQ(counter("link0/decide_group_reuses"), want_reuses);
  EXPECT_EQ(counter("link0/decide_group_rebuilds"), want_rebuilds);
  // The fixed point must actually be reached — the memo pays off.
  EXPECT_GT(want_reuses, want_rebuilds);
}

// ---------------------------------------------- incremental arrival feed ----

void expect_replays_bit_identical(const ReplayResult& a,
                                  const ReplayResult& b) {
  EXPECT_EQ(a.report.arrivals_injected, b.report.arrivals_injected);
  EXPECT_EQ(a.report.departure_markers, b.report.departure_markers);
  EXPECT_EQ(a.report.slots_executed, b.report.slots_executed);
  EXPECT_EQ(a.report.slots_skipped, b.report.slots_skipped);
  ASSERT_EQ(a.report.snapshots.size(), b.report.snapshots.size());
  for (std::size_t i = 0; i < a.report.snapshots.size(); ++i) {
    const MetricsSnapshot& sa = a.report.snapshots[i];
    const MetricsSnapshot& sb = b.report.snapshots[i];
    EXPECT_EQ(sa.slot, sb.slot);
    EXPECT_EQ(sa.active_sessions, sb.active_sessions);
    EXPECT_EQ(sa.admitted_total, sb.admitted_total);
    EXPECT_EQ(sa.rejected_total, sb.rejected_total);
    EXPECT_EQ(sa.capacity_offered_total, sb.capacity_offered_total);
    EXPECT_EQ(sa.capacity_used_total, sb.capacity_used_total);
    EXPECT_EQ(sa.window_utilization, sb.window_utilization);
    EXPECT_EQ(sa.link_load_fairness, sb.link_load_fairness);
  }
  EXPECT_EQ(a.cluster.metrics.fleet.sessions_admitted,
            b.cluster.metrics.fleet.sessions_admitted);
  EXPECT_EQ(a.cluster.metrics.fleet.capacity_used,
            b.cluster.metrics.fleet.capacity_used);
  EXPECT_EQ(a.cluster.metrics.fleet.quality_fairness,
            b.cluster.metrics.fleet.quality_fairness);
  EXPECT_EQ(a.cluster.metrics.spills, b.cluster.metrics.spills);
  EXPECT_EQ(a.cluster.metrics.placement_rejects,
            b.cluster.metrics.placement_rejects);
  for (std::size_t q = 0; q < kQosClassCount; ++q) {
    EXPECT_EQ(a.per_qos[q].arrivals, b.per_qos[q].arrivals);
    EXPECT_EQ(a.per_qos[q].admitted, b.per_qos[q].admitted);
    EXPECT_EQ(a.per_qos[q].rejected, b.per_qos[q].rejected);
  }
  ASSERT_EQ(a.cluster.sessions.size(), b.cluster.sessions.size());
  for (std::size_t i = 0; i < a.cluster.sessions.size(); ++i) {
    const ClusterSessionOutcome& ca = a.cluster.sessions[i];
    const ClusterSessionOutcome& cb = b.cluster.sessions[i];
    EXPECT_EQ(ca.link, cb.link);
    EXPECT_EQ(ca.spilled, cb.spilled);
    EXPECT_EQ(ca.arrived, cb.arrived);
    EXPECT_EQ(ca.session.admitted, cb.session.admitted);
    ASSERT_EQ(ca.session.trace.size(), cb.session.trace.size());
    for (std::size_t t = 0; t < ca.session.trace.size(); ++t) {
      EXPECT_EQ(ca.session.trace.at(t).depth, cb.session.trace.at(t).depth);
      EXPECT_EQ(ca.session.trace.at(t).service,
                cb.session.trace.at(t).service);
      EXPECT_EQ(ca.session.trace.at(t).backlog_end,
                cb.session.trace.at(t).backlog_end);
    }
  }
}

TEST(EventLoopTest, IncrementalScenarioFeedMatchesMaterializedReplay) {
  for (const ScenarioKind kind :
       {ScenarioKind::kDiurnal, ScenarioKind::kFlashCrowd}) {
    ScenarioConfig scenario = base_scenario();
    scenario.horizon = 1'500;
    scenario.base_rate = 0.01;
    scenario.mean_duration = 60.0;
    scenario.max_duration = 150;
    scenario.diurnal_period = 300;
    scenario.seed = 11;
    const auto generator = make_scenario(kind, scenario);

    ReplayConfig replay;
    replay.cluster = replay_cluster_config(2);
    replay.driver.snapshot_period = 50;
    const double load = cheapest_load(replay.cluster.serving.candidates);
    const double per_link = 2.5 * load;

    ConstantChannel a0(per_link), a1(per_link);
    std::vector<ChannelModel*> channels_a{&a0, &a1};
    const ReplayResult materialized =
        replay_trace(replay, generator->generate(), two_profiles(), channels_a);

    ConstantChannel b0(per_link), b1(per_link);
    std::vector<ChannelModel*> channels_b{&b0, &b1};
    const ReplayResult incremental =
        replay_scenario(replay, *generator, two_profiles(), channels_b);

    expect_replays_bit_identical(materialized, incremental);
    EXPECT_GT(incremental.report.arrivals_injected, 0U);

    // A mid-horizon stop must cut the same prefix in both shapes.
    replay.stop_slot = scenario.horizon / 2;
    ConstantChannel c0(per_link), c1(per_link);
    std::vector<ChannelModel*> channels_c{&c0, &c1};
    const ReplayResult materialized_cut =
        replay_trace(replay, generator->generate(), two_profiles(), channels_c);
    ConstantChannel d0(per_link), d1(per_link);
    std::vector<ChannelModel*> channels_d{&d0, &d1};
    const ReplayResult incremental_cut =
        replay_scenario(replay, *generator, two_profiles(), channels_d);
    expect_replays_bit_identical(materialized_cut, incremental_cut);
    EXPECT_LT(incremental_cut.report.arrivals_injected,
              incremental.report.arrivals_injected);
  }
}

TEST(ScenarioStreamTest, BatchesReproduceGenerateRowForRow) {
  ScenarioConfig config = base_scenario();
  config.seed = 31;
  const PoissonScenario generator(config);
  const WorkloadTrace trace = generator.generate();
  ASSERT_FALSE(trace.events.empty());

  ScenarioStream stream = generator.stream();
  std::size_t row = 0;
  std::size_t previous_slot = 0;
  while (stream.next_slot() != ScenarioStream::kExhausted) {
    ASSERT_FALSE(stream.batch().empty());
    EXPECT_GE(stream.next_slot(), previous_slot);
    previous_slot = stream.next_slot();
    EXPECT_EQ(stream.batch_first_row(), row);
    for (const TraceEvent& event : stream.batch()) {
      ASSERT_LT(row, trace.events.size());
      EXPECT_EQ(event, trace.events[row]);
      EXPECT_EQ(event.t_arrive, stream.next_slot());
      ++row;
    }
    stream.pop();
  }
  EXPECT_EQ(row, trace.events.size());
}

// ------------------------------------------------- allocation freedom ----

/// Drives six never-departing sessions through an EventLoop + EdgeCluster
/// and returns the allocations the run() performed. Called with two stop
/// horizons: every heap allocation belongs to the arrival/warm-up phase, so
/// the longer steady tail must add exactly zero.
std::size_t driver_run_allocations(std::size_t stop_slot) {
  ClusterConfig config = replay_cluster_config(2);
  config.serving.steps = 600;  // trace reservation horizon covers both runs
  const double load = cheapest_load(config.serving.candidates);
  const double capacity = 4.0 * load;
  EdgeCluster cluster(config, {capacity, capacity});
  ConstantChannel a(capacity), b(capacity);
  ClusterBackend backend(cluster, {&a, &b});

  DriverConfig driver;  // no snapshots: pure slot-loop steady state
  EventLoop loop(driver, backend);
  loop.reserve(6);
  for (std::size_t i = 0; i < 6; ++i) {
    SessionSpec spec;
    spec.cache = &shared_cache();
    spec.arrival_slot = i * 5;
    spec.seed = i;
    loop.schedule_arrival(spec.arrival_slot, spec);
  }
  loop.schedule_stop(stop_slot);

  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  loop.run();
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  static_cast<void>(cluster.finish());
  return after - before;
}

TEST(DriverAllocationProbeTest, SteadyStateBetweenArrivalsIsAllocationFree) {
  const std::size_t short_run = driver_run_allocations(150);
  const std::size_t long_run = driver_run_allocations(450);
  EXPECT_EQ(short_run, long_run)
      << "the 300 extra arrival-free driver slots performed "
      << (long_run - short_run) << " heap allocations";
}

}  // namespace
}  // namespace arvis
