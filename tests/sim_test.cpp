// Tests for the simulation engine: trace bookkeeping, frame-stats caching,
// run orchestration and the calibration helpers behind Fig. 2.
#include <gtest/gtest.h>

#include "datasets/catalog.hpp"
#include "sim/simulation.hpp"

namespace arvis {
namespace {

SimConfig test_config() {
  SimConfig config;
  config.steps = 200;
  config.candidates = {3, 4, 5, 6};
  return config;
}

const FrameStatsCache& shared_cache() {
  static const FrameStatsCache cache(*open_test_subject(61), 8, 8);
  return cache;
}

// ---------------------------------------------------------------- Trace ----

TEST(TraceTest, SeriesAndSummary) {
  Trace trace;
  for (std::size_t t = 0; t < 10; ++t) {
    StepRecord r;
    r.t = t;
    r.depth = static_cast<int>(5 + t % 2);
    r.arrivals = 100.0;
    r.service = 90.0;
    r.backlog_begin = 10.0 * static_cast<double>(t);
    r.backlog_end = 10.0 * static_cast<double>(t + 1);
    r.quality = 1.0 + static_cast<double>(t % 2);
    trace.add(r);
  }
  EXPECT_EQ(trace.backlog_series().size(), 10U);
  EXPECT_EQ(trace.depth_series()[1], 6);
  EXPECT_EQ(trace.quality_series()[0], 1.0);

  const TraceSummary s = trace.summarize();
  EXPECT_DOUBLE_EQ(s.time_average_quality, 1.5);
  EXPECT_DOUBLE_EQ(s.time_average_backlog, 45.0);
  EXPECT_DOUBLE_EQ(s.final_backlog, 100.0);
  EXPECT_DOUBLE_EQ(s.peak_backlog, 90.0);
  EXPECT_DOUBLE_EQ(s.mean_depth, 5.5);
  EXPECT_DOUBLE_EQ(s.mean_arrivals, 100.0);
}

TEST(TraceTest, SummaryRequiresEnoughSlots) {
  Trace trace;
  StepRecord r;
  trace.add(r);
  EXPECT_THROW(static_cast<void>(trace.summarize()), std::logic_error);
}

TEST(TraceTest, CsvTableShape) {
  Trace trace;
  for (std::size_t t = 0; t < 3; ++t) {
    StepRecord r;
    r.t = t;
    trace.add(r);
  }
  const CsvTable table = trace.to_csv_table();
  EXPECT_EQ(table.column_count(), 6U);
  EXPECT_EQ(table.row_count(), 3U);
}

TEST(TraceTest, CsvSerializationRoundTripsThroughParser) {
  // End-to-end: trace -> CSV text -> parse_csv recovers every cell, so
  // bench outputs can be re-loaded for offline analysis.
  Trace trace;
  for (std::size_t t = 0; t < 12; ++t) {
    StepRecord r;
    r.t = t;
    r.depth = 5 + static_cast<int>(t % 3);
    r.arrivals = 100.5 * static_cast<double>(t) + 0.25;  // never integral
    r.service = 42.25;
    r.backlog_begin = static_cast<double>(t * t) + 0.5;  // non-integral so
    r.quality = 7.125;  // the parser classifies these columns as doubles
    trace.add(r);
  }
  const auto parsed = parse_csv(trace.to_csv_table().to_string());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->row_count(), trace.size());
  for (std::size_t t = 0; t < trace.size(); ++t) {
    EXPECT_EQ(std::get<std::int64_t>(parsed->at(t, 0)),
              static_cast<std::int64_t>(t));
    EXPECT_EQ(std::get<std::int64_t>(parsed->at(t, 1)), trace.at(t).depth);
    EXPECT_DOUBLE_EQ(std::get<double>(parsed->at(t, 2)), trace.at(t).arrivals);
    EXPECT_DOUBLE_EQ(std::get<double>(parsed->at(t, 4)),
                     trace.at(t).backlog_begin);
  }
}

// ------------------------------------------------------ FrameStatsCache ----

TEST(FrameStatsCacheTest, CachesRequestedFrames) {
  const auto source = open_test_subject(62);
  const FrameStatsCache cache(*source, 7, 4);
  EXPECT_EQ(cache.frame_count(), 4U);
  EXPECT_EQ(cache.octree_depth(), 7);
  // Slot indices wrap over the cached frames.
  EXPECT_DOUBLE_EQ(cache.workload(0).points(7), cache.workload(4).points(7));
}

TEST(FrameStatsCacheTest, MeanPointsMonotone) {
  const auto& cache = shared_cache();
  const auto& mean = cache.mean_points_at_depth();
  ASSERT_EQ(mean.size(), 9U);
  for (std::size_t d = 1; d < mean.size(); ++d) {
    EXPECT_GE(mean[d], mean[d - 1]);
  }
  EXPECT_DOUBLE_EQ(mean[0], 1.0);  // root
}

// ----------------------------------------------------------- Simulation ----

TEST(SimulationTest, RunsAndRecordsEverySlot) {
  const auto& cache = shared_cache();
  const SimConfig config = test_config();
  LyapunovDepthController controller(1'000.0);
  ConstantService service(calibrate_service_rate(cache, 4));
  const Trace trace = run_simulation(config, cache, controller, service);
  ASSERT_EQ(trace.size(), config.steps);
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const StepRecord& r = trace.at(t);
    EXPECT_EQ(r.t, t);
    EXPECT_GE(r.depth, config.candidates.front());
    EXPECT_LE(r.depth, config.candidates.back());
    EXPECT_GT(r.arrivals, 0.0);
    if (t > 0) {
      EXPECT_DOUBLE_EQ(r.backlog_begin, trace.at(t - 1).backlog_end);
    }
  }
}

TEST(SimulationTest, BacklogFollowsLindley) {
  const auto& cache = shared_cache();
  SimConfig config = test_config();
  config.steps = 50;
  auto controller = FixedDepthController::max_depth();
  ConstantService service(100.0);
  const Trace trace = run_simulation(config, cache, controller, service);
  for (const StepRecord& r : trace.steps()) {
    const double expected =
        std::max(r.backlog_begin - r.service, 0.0) + r.arrivals;
    EXPECT_NEAR(r.backlog_end, expected, 1e-9);
  }
}

TEST(SimulationTest, QualityKindChangesUtilityScale) {
  const auto& cache = shared_cache();
  SimConfig config = test_config();
  config.steps = 32;
  ConstantService service(1e9);  // everything sustainable
  config.quality = QualityKind::kPoints;
  LyapunovDepthController c1(1.0);
  const Trace points_trace = run_simulation(config, cache, c1, service);
  config.quality = QualityKind::kLogPoints;
  LyapunovDepthController c2(1.0);
  ConstantService service2(1e9);
  const Trace log_trace = run_simulation(config, cache, c2, service2);
  // Point-count utilities are orders of magnitude above log utilities.
  EXPECT_GT(points_trace.summarize().time_average_quality,
            100.0 * log_trace.summarize().time_average_quality);
}

TEST(SimulationTest, ConfigValidation) {
  const auto& cache = shared_cache();
  LyapunovDepthController controller(1.0);
  ConstantService service(100.0);
  SimConfig config = test_config();
  config.steps = 0;
  EXPECT_THROW(run_simulation(config, cache, controller, service),
               std::invalid_argument);
  config = test_config();
  config.candidates = {};
  EXPECT_THROW(run_simulation(config, cache, controller, service),
               std::invalid_argument);
  config.candidates = {5, 4};
  EXPECT_THROW(run_simulation(config, cache, controller, service),
               std::invalid_argument);
  config.candidates = {5, 12};  // beyond the cache's octree depth (8)
  EXPECT_THROW(run_simulation(config, cache, controller, service),
               std::invalid_argument);
}

TEST(SimulationTest, InitialBacklogPropagates) {
  const auto& cache = shared_cache();
  SimConfig config = test_config();
  config.steps = 8;
  config.initial_backlog = 777.0;
  auto controller = FixedDepthController::min_depth();
  ConstantService service(0.0);
  const Trace trace = run_simulation(config, cache, controller, service);
  EXPECT_DOUBLE_EQ(trace.at(0).backlog_begin, 777.0);
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  const auto& cache = shared_cache();
  const SimConfig config = test_config();
  LyapunovDepthController c1(500.0), c2(500.0);
  ConstantService s1(2'000.0), s2(2'000.0);
  const Trace a = run_simulation(config, cache, c1, s1);
  const Trace b = run_simulation(config, cache, c2, s2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.at(t).depth, b.at(t).depth);
    EXPECT_DOUBLE_EQ(a.at(t).backlog_end, b.at(t).backlog_end);
  }
}

// ---------------------------------------------------------- Calibration ----

TEST(CalibrationTest, ServiceRateSitsAtRequestedDepth) {
  const auto& cache = shared_cache();
  const double rate = calibrate_service_rate(cache, 5, 1.05);
  const auto& mean = cache.mean_points_at_depth();
  EXPECT_DOUBLE_EQ(rate, mean[5] * 1.05);
  // Depth 5 sustainable, depth 6 not (test subject grows >5% per level).
  EXPECT_GE(rate, mean[5]);
  EXPECT_LT(rate, mean[6]);
  EXPECT_THROW(calibrate_service_rate(cache, 99), std::invalid_argument);
  EXPECT_THROW(calibrate_service_rate(cache, 5, 0.0), std::invalid_argument);
}

TEST(CalibrationTest, VPivotPlacesSwitchover) {
  const auto& cache = shared_cache();
  SimConfig config = test_config();
  config.quality = QualityKind::kPoints;
  const double pivot = 1'234.0;
  // With point-count quality, Δa == Δp so V == pivot exactly.
  EXPECT_NEAR(calibrate_v_for_pivot(cache, config, pivot), pivot, 1e-9);
  config.quality = QualityKind::kLogPoints;
  // With log quality the V compensates by Δa/Δp > 1.
  EXPECT_GT(calibrate_v_for_pivot(cache, config, pivot), pivot);
  EXPECT_THROW(calibrate_v_for_pivot(cache, config, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace arvis
