#!/usr/bin/env python3
"""Hot-path invariant linter for the serving runtime.

The decide/schedule/drain slot loop earns its throughput from a short list
of structural promises: no per-slot allocation, no virtual dispatch inside
kernels, no iostream flushing, dense arrays instead of node-based
containers. Sanitizers cannot see these regressions (an accidental
std::function capture is perfectly well-defined — just slow), so this
linter makes the promises executable: it scans the hot-path translation
units for banned constructs and fails CI on any hit that is not covered by
the documented allowlist (tools/lint_allowlist.txt).

Checks run on comment- and string-stripped source, so prose like
"brand-new session" never trips the `new` rule.

Usage: python3 tools/lint_invariants.py [--repo-root DIR]
Exit code 0 = clean, 1 = violations (or a stale allowlist), 2 = bad setup.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# The hot-path TU set: the session arena + decide engine, the manager's
# decide/drain slot loop, the schedulers, the event calendar, and the
# telemetry record path. Everything here runs per slot (or per session·slot)
# in the serving benchmark.
HOT_PATH_FILES = [
    "src/serving/session_store.hpp",
    "src/serving/session_store.cpp",
    "src/serving/session_manager.hpp",
    "src/serving/session_manager.cpp",
    "src/serving/scheduler.hpp",
    "src/serving/scheduler.cpp",
    "src/serving/driver/calendar.hpp",
    "src/serving/driver/calendar.cpp",
    "src/serving/telemetry/flight_recorder.hpp",
    "src/serving/telemetry/flight_recorder.cpp",
    "src/serving/telemetry/registry.hpp",
    "src/serving/telemetry/registry.cpp",
    "src/serving/telemetry/tracer.hpp",
    "src/serving/telemetry/tracer.cpp",
]

# rule name -> (regex on stripped code, why it is banned here)
RULES = {
    "naked-new": (
        re.compile(r"\bnew\b"),
        "heap allocation on the hot path; preallocate or use the arena",
    ),
    "make-unique": (
        re.compile(r"\bstd::make_(?:unique|shared)\b"),
        "heap allocation on the hot path; construction-time factories only",
    ),
    "std-function": (
        re.compile(r"\bstd::function\b"),
        "type-erased callables allocate and defeat inlining; use templates",
    ),
    "virtual": (
        re.compile(r"\bvirtual\b"),
        "virtual dispatch inside kernels defeats inlining; per-slot "
        "polymorphism must stay at phase granularity",
    ),
    "std-endl": (
        re.compile(r"\bstd::endl\b"),
        "endl flushes; hot paths must not do stream I/O at all",
    ),
    "node-container": (
        re.compile(
            r"\bstd::(?:map|multimap|set|multiset|list|forward_list|"
            r"unordered_map|unordered_multimap|unordered_set|"
            r"unordered_multiset)\s*<"
        ),
        "node-based containers allocate per insert; use dense vectors",
    ),
    "stream-header": (
        re.compile(r'#\s*include\s*<(?:iostream|sstream|fstream|strstream)>'),
        "iostream machinery in a hot-path TU (static init + code bloat); "
        "format at the export layer instead",
    ),
}

PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)


def strip_comments_and_strings(text: str) -> str:
    """Replaces comments and string/char literal *contents* with spaces,
    preserving line structure so reported line numbers stay true."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_allowlist(path: pathlib.Path) -> dict[tuple[str, str], int]:
    """Parses `file:rule:max_count` lines; '#' starts a comment."""
    budgets: dict[tuple[str, str], int] = {}
    if not path.exists():
        return budgets
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split(":")
        if len(parts) != 3:
            sys.exit(f"error: {path}:{lineno}: expected file:rule:max_count")
        file, rule, count = parts
        if rule not in RULES:
            sys.exit(f"error: {path}:{lineno}: unknown rule {rule!r}")
        budgets[(file.strip(), rule.strip())] = int(count)
    return budgets


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent)
    args = parser.parse_args()
    root = args.repo_root

    budgets = load_allowlist(root / "tools" / "lint_allowlist.txt")

    failures = 0
    counts: dict[tuple[str, str], int] = {}
    for rel in HOT_PATH_FILES:
        path = root / rel
        if not path.exists():
            print(f"error: hot-path file missing: {rel} "
                  "(update HOT_PATH_FILES if it moved)")
            return 2
        text = path.read_text()
        stripped = strip_comments_and_strings(text)

        if rel.endswith(".hpp") and not PRAGMA_ONCE.search(text):
            print(f"{rel}: header-hygiene: missing #pragma once")
            failures += 1

        for rule, (pattern, why) in RULES.items():
            hits = []
            for m in pattern.finditer(stripped):
                line = stripped.count("\n", 0, m.start()) + 1
                hits.append(line)
            counts[(rel, rule)] = len(hits)
            budget = budgets.get((rel, rule), 0)
            if len(hits) > budget:
                for line in hits:
                    print(f"{rel}:{line}: {rule}: {why}"
                          + (f" (allowlist budget {budget})" if budget else ""))
                failures += len(hits) - budget

    # A shrunk count means the allowlist is stale: tighten it so the budget
    # cannot silently re-inflate later.
    for (file, rule), budget in budgets.items():
        actual = counts.get((file, rule), 0)
        if actual < budget:
            print(f"tools/lint_allowlist.txt: stale budget {file}:{rule}:"
                  f"{budget} (actual {actual}) — tighten it")
            failures += 1

    if failures:
        print(f"\nlint_invariants: {failures} violation(s). Either fix the "
              "construct or, for a lifecycle-edge use that provably never "
              "runs per slot, add a justified tools/lint_allowlist.txt entry.")
        return 1
    print(f"lint_invariants: clean "
          f"({len(HOT_PATH_FILES)} files, {len(RULES) + 1} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
