#!/usr/bin/env python3
"""Terminal dashboard over an arvis live-stats file.

The EventLoop rewrites ``live_stats.json`` at every snapshot boundary when
``DriverConfig::live_stats_path`` is set (the file is replaced via rename, so
a read never sees a torn write). This tool tails that file and redraws a
one-screen summary: run position, fleet admission totals, utilization and
fairness gauges, and the live state of every SLO spec.

Stdlib only — no dependencies. Usage:

    ./build/examples/trace_replay --slo-strict --out-dir run &
    python3 tools/arvis_top.py run/live_stats.json

    python3 tools/arvis_top.py --interval 0.2 run/live_stats.json
    python3 tools/arvis_top.py --once run/live_stats.json   # single frame

Exits cleanly on Ctrl-C. A missing file is not an error (the run may not
have reached its first snapshot yet); malformed JSON is skipped (can only
happen if something other than the runtime wrote the file).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

STATE_GLYPH = {"ok": "  ok  ", "blip": " BLIP ", "breach": "BREACH"}


def gauge(fraction: float, width: int = 24) -> str:
    """A [#####---] bar for a 0..1 value (clamped)."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def load_stats(path: str):
    """The parsed live-stats object, or None if absent/partial."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError):
        return None


def render(stats, path: str) -> str:
    lines = []
    lines.append(f"arvis top — {path}")
    lines.append("")
    slot = stats.get("slot", 0)
    active = stats.get("active", 0)
    admitted = stats.get("admitted", 0)
    rejected = stats.get("rejected", 0)
    arrivals = admitted + rejected
    accept = admitted / arrivals if arrivals else 1.0
    lines.append(
        f"  slot {slot:>8}   active {active:>6}   "
        f"admitted {admitted:>6}   rejected {rejected:>6}"
    )
    util = stats.get("window_utilization", 0.0)
    fair = stats.get("link_fairness", 0.0)
    lines.append(f"  utilization  {gauge(util)} {util:7.1%}")
    lines.append(f"  fairness     {gauge(fair)} {fair:7.1%}")
    lines.append(f"  accept ratio {gauge(accept)} {accept:7.1%}")
    lines.append("")

    if "failover_displaced" in stats or "migrations_requested" in stats:
        displaced = stats.get("failover_displaced", 0)
        replaced = stats.get("failover_replaced", 0)
        mig_req = stats.get("migrations_requested", 0)
        mig_done = stats.get("migrations_completed", 0)
        mig_abort = stats.get("migrations_aborted", 0)
        lines.append(
            f"  failover     {displaced:>4} displaced "
            f"-> {replaced} re-placed"
        )
        lines.append(
            f"  migrations   {mig_done:>4} completed   "
            f"{mig_abort} aborted   ({mig_req} requested)"
        )
        lines.append("")

    slos = stats.get("slo", [])
    breaches = stats.get("breaches", 0)
    blips = stats.get("blips", 0)
    if slos:
        lines.append(f"  SLOs ({breaches} breaches, {blips} blips this run):")
        for spec in slos:
            state = spec.get("state", "?")
            glyph = STATE_GLYPH.get(state, f"  {state:<4}")
            lines.append(f"    [{glyph}]  {spec.get('name', '?')}")
    else:
        lines.append("  (no SLO specs armed)")

    config = stats.get("config")
    if config is not None:
        lines.append("")
        lines.append(f"  config: {json.dumps(config, sort_keys=True)}")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="watch an arvis live-stats file"
    )
    parser.add_argument("path", help="live_stats.json written by the run")
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period, seconds"
    )
    parser.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    args = parser.parse_args()

    try:
        while True:
            stats = load_stats(args.path)
            if args.once:
                if stats is None:
                    print(f"no readable stats at {args.path}", file=sys.stderr)
                    return 1
                print(render(stats, args.path))
                return 0
            frame = (
                render(stats, args.path)
                if stats is not None
                else f"arvis top — waiting for {args.path} …"
            )
            # Clear + home, then the frame; plain escapes keep us stdlib-only.
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
